#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "src/support/bytes.h"
#include "src/trie/mpt.h"

namespace pevm {
namespace {

Bytes B(std::string_view s) { return Bytes(s.begin(), s.end()); }

TEST(MptTest, EmptyTrieHasCanonicalRoot) {
  MerklePatriciaTrie trie;
  // keccak(rlp("")) — the universally known empty-trie root.
  EXPECT_EQ(HexEncode(trie.RootHash()),
            "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
}

TEST(MptTest, SingleEntryKnownRoot) {
  // From the canonical trie test suite ("singleItem"-style): the trie
  // {"A": "aaaa.."x2} has a stable root; here we lock in our own computed
  // value as a regression anchor and verify Get round-trips.
  MerklePatriciaTrie trie;
  trie.Put(B("A"), B("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"));
  EXPECT_EQ(trie.Get(B("A")),
            B("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"));
  EXPECT_EQ(HexEncode(trie.RootHash()),
            "d23786fb4a010da3ce639d66d5e904a11dbc02746d1ce25029e53290cabf28ab");
}

TEST(MptTest, EthereumFooBarVector) {
  // From the Ethereum cpp/go trie tests: {"foo": "bar", "food": "bass"}.
  MerklePatriciaTrie trie;
  trie.Put(B("foo"), B("bar"));
  trie.Put(B("food"), B("bass"));
  EXPECT_EQ(HexEncode(trie.RootHash()),
            "17beaa1648bafa633cda809c90c04af50fc8aed3cb40d16efbddee6fdf63c4c3");
}

TEST(MptTest, EthereumDogeVector) {
  // From the Ethereum trie tests (puppy/coin/doge set, insertion order free).
  MerklePatriciaTrie trie;
  trie.Put(B("do"), B("verb"));
  trie.Put(B("horse"), B("stallion"));
  trie.Put(B("doge"), B("coin"));
  trie.Put(B("dog"), B("puppy"));
  EXPECT_EQ(HexEncode(trie.RootHash()),
            "5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84");
}

TEST(MptTest, InsertionOrderDoesNotChangeRoot) {
  std::vector<std::pair<Bytes, Bytes>> kvs = {
      {B("do"), B("verb")}, {B("horse"), B("stallion")}, {B("doge"), B("coin")},
      {B("dog"), B("puppy")}, {B("dodge"), B("car")},    {B("a"), B("x")},
  };
  MerklePatriciaTrie a;
  for (const auto& [k, v] : kvs) {
    a.Put(k, v);
  }
  MerklePatriciaTrie b;
  for (auto it = kvs.rbegin(); it != kvs.rend(); ++it) {
    b.Put(it->first, it->second);
  }
  EXPECT_EQ(HexEncode(a.RootHash()), HexEncode(b.RootHash()));
}

TEST(MptTest, ReplaceValueChangesRootAndKeepsSize) {
  MerklePatriciaTrie trie;
  trie.Put(B("key"), B("one"));
  Hash256 r1 = trie.RootHash();
  trie.Put(B("key"), B("two"));
  EXPECT_NE(HexEncode(r1), HexEncode(trie.RootHash()));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.Get(B("key")), B("two"));
}

TEST(MptTest, GetMissingKeys) {
  MerklePatriciaTrie trie;
  EXPECT_FALSE(trie.Get(B("nothing")).has_value());
  trie.Put(B("doge"), B("coin"));
  EXPECT_FALSE(trie.Get(B("dog")).has_value());   // Prefix of an existing key.
  EXPECT_FALSE(trie.Get(B("doges")).has_value()); // Extension past a leaf.
  EXPECT_FALSE(trie.Get(B("cat")).has_value());
}

TEST(MptTest, BranchValueHandling) {
  MerklePatriciaTrie trie;
  trie.Put(B("dog"), B("puppy"));
  trie.Put(B("doge"), B("coin"));   // "dog" value moves into the branch.
  trie.Put(B("dogs"), B("many"));
  EXPECT_EQ(trie.Get(B("dog")), B("puppy"));
  EXPECT_EQ(trie.Get(B("doge")), B("coin"));
  EXPECT_EQ(trie.Get(B("dogs")), B("many"));
  EXPECT_EQ(trie.size(), 3u);
}

// Property test: the trie agrees with a std::map oracle and the root is a
// pure function of contents.
class MptPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MptPropertyTest, RandomKeyValueAgreement) {
  std::mt19937_64 rng(GetParam());
  std::map<Bytes, Bytes> oracle;
  MerklePatriciaTrie trie;
  for (int i = 0; i < 400; ++i) {
    size_t key_len = 1 + rng() % 8;
    Bytes key(key_len);
    for (auto& b : key) {
      b = static_cast<uint8_t>(rng() % 4);  // Small alphabet forces shared prefixes.
    }
    Bytes value = {static_cast<uint8_t>(rng() % 255 + 1)};
    oracle[key] = value;
    trie.Put(key, value);
  }
  EXPECT_EQ(trie.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(trie.Get(k), v) << HexEncode(k);
  }
  // Rebuild in sorted order: identical root.
  MerklePatriciaTrie rebuilt;
  for (const auto& [k, v] : oracle) {
    rebuilt.Put(k, v);
  }
  EXPECT_EQ(HexEncode(trie.RootHash()), HexEncode(rebuilt.RootHash()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MptPropertyTest, ::testing::Values(11, 22, 33, 44));

// --- Dirty-node harvest (the durability hook behind src/chain/node_store.h).

using NodeArchive = std::map<Hash256, Bytes>;

// Harvest sink that checks content-addressing on the way in.
size_t HarvestInto(const MerklePatriciaTrie& trie, NodeArchive& archive) {
  return trie.HarvestDirtyNodes([&archive](const Hash256& hash, BytesView encoding) {
    Bytes enc(encoding.begin(), encoding.end());
    EXPECT_EQ(HexEncode(Keccak256(BytesView(enc.data(), enc.size()))), HexEncode(hash));
    archive[hash] = std::move(enc);
  });
}

// Deterministic fuzz contents shared by the harvest tests.
std::map<Bytes, Bytes> RandomContents(uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::map<Bytes, Bytes> contents;
  for (int i = 0; i < n; ++i) {
    Bytes key(1 + rng() % 8);
    for (auto& b : key) {
      b = static_cast<uint8_t>(rng() % 4);
    }
    Bytes value(1 + rng() % 40);
    for (auto& b : value) {
      b = static_cast<uint8_t>(rng());
    }
    contents[key] = value;
  }
  return contents;
}

TEST(MptHarvestTest, FreshHarvestEmitsEverythingOnceThenNothing) {
  MerklePatriciaTrie trie;
  for (const auto& [k, v] : RandomContents(51, 200)) {
    trie.Put(k, v);
  }
  NodeArchive archive;
  size_t emitted = HarvestInto(trie, archive);
  EXPECT_GT(emitted, 0u);
  EXPECT_EQ(archive.size(), emitted);  // Content addressing: no duplicates.
  // The root is always in the archive (Ethereum's hashed-root convention).
  EXPECT_TRUE(archive.contains(trie.RootHash()));
  // A clean trie harvests empty.
  EXPECT_EQ(HarvestInto(trie, archive), 0u);
}

TEST(MptHarvestTest, MarkAllPersistedSuppressesEmissionUntilNextMutation) {
  MerklePatriciaTrie trie;
  for (const auto& [k, v] : RandomContents(52, 150)) {
    trie.Put(k, v);
  }
  trie.MarkAllPersisted();
  NodeArchive archive;
  EXPECT_EQ(HarvestInto(trie, archive), 0u);
  trie.Put(B("freshkey"), B("freshvalue"));
  EXPECT_GT(HarvestInto(trie, archive), 0u);
}

// The archive-completeness property resume depends on: accumulating every
// incremental harvest yields an archive that contains every node of the
// *final* trie — i.e. a reader holding the last root could resolve the whole
// state from the store, even though each harvest only walked a dirty spine.
TEST(MptHarvestTest, AccumulatedIncrementalHarvestsCoverTheFinalTrie) {
  std::mt19937_64 rng(53);
  std::map<Bytes, Bytes> oracle;
  MerklePatriciaTrie trie;
  NodeArchive archive;
  size_t total_incremental = 0;
  size_t full_rebuild_nodes = 0;
  for (int round = 0; round < 12; ++round) {
    // A batch of puts and deletes, then one harvest (one "block").
    std::vector<TrieUpdate> updates;
    for (int i = 0; i < 30; ++i) {
      Bytes key(1 + rng() % 6);
      for (auto& b : key) {
        b = static_cast<uint8_t>(rng() % 4);
      }
      TrieUpdate update;
      update.key = key;
      if (rng() % 4 == 0) {
        oracle.erase(key);  // Empty value = delete.
      } else {
        update.value = Bytes{static_cast<uint8_t>(rng() % 255 + 1),
                             static_cast<uint8_t>(round)};
        oracle[key] = update.value;
      }
      updates.push_back(std::move(update));
    }
    trie.ApplyDiff(updates);
    total_incremental += HarvestInto(trie, archive);
  }
  // Oracle agreement after the churn.
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(trie.Get(k), v);
  }
  // A from-scratch build of the final contents must find its every node in
  // the accumulated archive.
  MerklePatriciaTrie rebuilt;
  for (const auto& [k, v] : oracle) {
    rebuilt.Put(k, v);
  }
  ASSERT_EQ(HexEncode(rebuilt.RootHash()), HexEncode(trie.RootHash()));
  full_rebuild_nodes = rebuilt.HarvestDirtyNodes([&](const Hash256& hash, BytesView encoding) {
    auto it = archive.find(hash);
    ASSERT_NE(it, archive.end()) << "node missing from archive: " << HexEncode(hash);
    EXPECT_EQ(HexEncode(it->second), HexEncode(Bytes(encoding.begin(), encoding.end())));
  });
  EXPECT_GT(full_rebuild_nodes, 0u);
  // And the harvests really were incremental: across 12 rounds they emitted
  // history (superset), not 12 full copies of the final trie.
  EXPECT_GT(total_incremental, full_rebuild_nodes);
}

// --- Deletion. ---

TEST(MptDeleteTest, DeleteRestoresPriorRoot) {
  MerklePatriciaTrie trie;
  trie.Put(B("dog"), B("puppy"));
  Hash256 before = trie.RootHash();
  trie.Put(B("doge"), B("coin"));
  EXPECT_TRUE(trie.Delete(B("doge")));
  EXPECT_EQ(HexEncode(trie.RootHash()), HexEncode(before));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(MptDeleteTest, DeleteMissingKeyIsNoOp) {
  MerklePatriciaTrie trie;
  trie.Put(B("dog"), B("puppy"));
  Hash256 before = trie.RootHash();
  EXPECT_FALSE(trie.Delete(B("cat")));
  EXPECT_FALSE(trie.Delete(B("do")));     // Prefix of an existing key.
  EXPECT_FALSE(trie.Delete(B("doggo")));  // Extension past a leaf.
  EXPECT_EQ(HexEncode(trie.RootHash()), HexEncode(before));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(MptDeleteTest, DeleteToEmptyTrie) {
  MerklePatriciaTrie trie;
  trie.Put(B("only"), B("one"));
  EXPECT_TRUE(trie.Delete(B("only")));
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(HexEncode(trie.RootHash()),
            "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
}

TEST(MptDeleteTest, BranchCollapsesAfterDelete) {
  // The canonical doge-set: removing entries must collapse branches back so
  // the root equals a freshly built trie at every step.
  std::vector<std::pair<Bytes, Bytes>> kvs = {
      {B("do"), B("verb")}, {B("horse"), B("stallion")}, {B("doge"), B("coin")},
      {B("dog"), B("puppy")},
  };
  MerklePatriciaTrie trie;
  for (const auto& [k, v] : kvs) {
    trie.Put(k, v);
  }
  // Delete in several orders; after each deletion, compare with a rebuild.
  for (size_t victim = 0; victim < kvs.size(); ++victim) {
    MerklePatriciaTrie mutated;
    for (const auto& [k, v] : kvs) {
      mutated.Put(k, v);
    }
    ASSERT_TRUE(mutated.Delete(kvs[victim].first));
    MerklePatriciaTrie rebuilt;
    for (size_t i = 0; i < kvs.size(); ++i) {
      if (i != victim) {
        rebuilt.Put(kvs[i].first, kvs[i].second);
      }
    }
    EXPECT_EQ(HexEncode(mutated.RootHash()), HexEncode(rebuilt.RootHash()))
        << "victim " << victim;
    EXPECT_FALSE(mutated.Get(kvs[victim].first).has_value());
  }
}

TEST(MptDeleteTest, BranchValueDeletion) {
  MerklePatriciaTrie trie;
  trie.Put(B("dog"), B("puppy"));
  trie.Put(B("doge"), B("coin"));   // "dog"'s value lives in the branch.
  trie.Put(B("dogs"), B("many"));
  ASSERT_TRUE(trie.Delete(B("dog")));
  EXPECT_FALSE(trie.Get(B("dog")).has_value());
  EXPECT_EQ(trie.Get(B("doge")), B("coin"));
  EXPECT_EQ(trie.Get(B("dogs")), B("many"));
  MerklePatriciaTrie rebuilt;
  rebuilt.Put(B("doge"), B("coin"));
  rebuilt.Put(B("dogs"), B("many"));
  EXPECT_EQ(HexEncode(trie.RootHash()), HexEncode(rebuilt.RootHash()));
}

class MptDeletePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MptDeletePropertyTest, RandomInsertDeleteAgainstOracle) {
  std::mt19937_64 rng(GetParam());
  std::map<Bytes, Bytes> oracle;
  MerklePatriciaTrie trie;
  for (int step = 0; step < 600; ++step) {
    size_t key_len = 1 + rng() % 6;
    Bytes key(key_len);
    for (auto& b : key) {
      b = static_cast<uint8_t>(rng() % 3);  // Tiny alphabet: deep sharing.
    }
    if (rng() % 3 != 0) {
      Bytes value = {static_cast<uint8_t>(rng() % 255 + 1)};
      oracle[key] = value;
      trie.Put(key, value);
    } else {
      bool oracle_had = oracle.erase(key) > 0;
      EXPECT_EQ(trie.Delete(key), oracle_had) << HexEncode(key);
    }
  }
  ASSERT_EQ(trie.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(trie.Get(k), v) << HexEncode(k);
  }
  // Content addressing: a freshly built trie has the identical root.
  MerklePatriciaTrie rebuilt;
  for (const auto& [k, v] : oracle) {
    rebuilt.Put(k, v);
  }
  EXPECT_EQ(HexEncode(trie.RootHash()), HexEncode(rebuilt.RootHash()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MptDeletePropertyTest, ::testing::Values(7, 17, 27, 37, 47));

// ApplyDiff + incremental-root battery: a long-lived trie absorbing random
// batched diffs (interleaved inserts, updates and deletes, with the memoized
// incremental RootHash queried after every batch) must agree at each step
// with a trie built from scratch from the surviving key set. This is the
// chain committer's exact usage pattern (src/chain/commit.cc).
class MptApplyDiffPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MptApplyDiffPropertyTest, BatchedDiffsMatchFromScratchRebuild) {
  std::mt19937_64 rng(GetParam());
  std::map<Bytes, Bytes> oracle;
  MerklePatriciaTrie trie;
  for (int batch = 0; batch < 40; ++batch) {
    std::vector<TrieUpdate> updates;
    size_t batch_size = 1 + rng() % 20;
    size_t expected_changed = 0;
    std::map<Bytes, Bytes> pending = oracle;  // Tracks within-batch ordering.
    for (size_t u = 0; u < batch_size; ++u) {
      size_t key_len = 1 + rng() % 6;
      Bytes key(key_len);
      for (auto& b : key) {
        b = static_cast<uint8_t>(rng() % 3);  // Tiny alphabet: deep sharing.
      }
      TrieUpdate update;
      update.key = key;
      if (rng() % 3 != 0) {
        update.value = {static_cast<uint8_t>(rng() % 255 + 1),
                        static_cast<uint8_t>(rng() % 256)};
        if (!pending.contains(key)) {
          ++expected_changed;
        }
        pending[key] = update.value;
      } else {
        // Empty value = delete (may hit an absent key: must be a no-op).
        if (pending.erase(key) > 0) {
          ++expected_changed;
        }
      }
      updates.push_back(std::move(update));
    }
    EXPECT_EQ(trie.ApplyDiff(updates), expected_changed) << "batch " << batch;
    oracle = std::move(pending);

    ASSERT_EQ(trie.size(), oracle.size()) << "batch " << batch;
    MerklePatriciaTrie rebuilt;
    for (const auto& [k, v] : oracle) {
      rebuilt.Put(k, v);
    }
    ASSERT_EQ(HexEncode(trie.RootHash()), HexEncode(rebuilt.RootHash())) << "batch " << batch;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MptApplyDiffPropertyTest, ::testing::Values(11, 23, 59, 83));

// --- ShardedMpt: the 16-way split the parallel committer fans out over. ---
// Equivalence contract: identical mutation history ⇒ bit-identical root AND
// bit-identical harvested node multiset vs the monolithic trie, at every
// step — including the degenerate shapes (empty, one live shard whose root
// merges into the join, transitions between those and the general case).

using HarvestSet = std::vector<std::pair<Hash256, Bytes>>;

template <typename Trie>
HarvestSet HarvestSorted(const Trie& trie) {
  HarvestSet nodes;
  trie.HarvestDirtyNodes([&nodes](const Hash256& hash, BytesView encoding) {
    Bytes enc(encoding.begin(), encoding.end());
    EXPECT_EQ(HexEncode(Keccak256(BytesView(enc.data(), enc.size()))), HexEncode(hash));
    nodes.emplace_back(hash, std::move(enc));
  });
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

TEST(ShardedMptTest, EmptyTrieHasCanonicalRoot) {
  ShardedMpt trie;
  EXPECT_EQ(HexEncode(trie.RootHash()),
            "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
  EXPECT_EQ(trie.HarvestDirtyNodes([](const Hash256&, BytesView) {}), 0u);
}

TEST(ShardedMptTest, MatchesMonolithicOnKnownVectors) {
  ShardedMpt sharded;
  MerklePatriciaTrie mono;
  for (const auto& [k, v] : std::vector<std::pair<Bytes, Bytes>>{
           {B("do"), B("verb")},
           {B("horse"), B("stallion")},
           {B("doge"), B("coin")},
           {B("dog"), B("puppy")},
       }) {
    sharded.Put(k, v);
    mono.Put(k, v);
    ASSERT_EQ(HexEncode(sharded.RootHash()), HexEncode(mono.RootHash()));
    ASSERT_EQ(sharded.Get(k), mono.Get(k));
  }
  EXPECT_EQ(sharded.size(), mono.size());
  EXPECT_EQ(HarvestSorted(sharded), HarvestSorted(mono));
}

// The satellite battery: 200 rounds of mixed Put/Delete/ApplyDiff churn with
// roots, sizes and harvested node sets compared every round. Odd seeds pin
// the key's first byte to a two-value set so the trie spends most of its life
// with 0–2 live shards (the merged-root join cases and their transitions);
// even seeds spread keys over all 16 shards.
class ShardedMptPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedMptPropertyTest, ChurnKeepsRootsAndHarvestsBitIdentical) {
  const uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  const bool pin_shards = seed % 2 == 1;
  ShardedMpt sharded;
  MerklePatriciaTrie mono;
  std::map<Bytes, Bytes> oracle;
  auto random_key = [&]() {
    Bytes key(1 + rng() % 5);
    key[0] = pin_shards ? static_cast<uint8_t>((rng() % 2) * 0x10)
                        : static_cast<uint8_t>(rng());
    for (size_t i = 1; i < key.size(); ++i) {
      key[i] = static_cast<uint8_t>(rng() % 3);  // Tiny alphabet: deep sharing.
    }
    return key;
  };
  for (int round = 0; round < 200; ++round) {
    if (rng() % 3 == 0) {
      // Batched ApplyDiff round (the committer's usage).
      std::vector<TrieUpdate> updates;
      size_t n = 1 + rng() % 12;
      for (size_t u = 0; u < n; ++u) {
        TrieUpdate update;
        update.key = random_key();
        if (rng() % 3 != 0) {
          update.value = {static_cast<uint8_t>(rng() % 255 + 1)};
          oracle[update.key] = update.value;
        } else {
          oracle.erase(update.key);
        }
        updates.push_back(std::move(update));
      }
      size_t changed_sharded = sharded.ApplyDiff(updates);
      size_t changed_mono = mono.ApplyDiff(updates);
      ASSERT_EQ(changed_sharded, changed_mono) << "round " << round;
    } else {
      // Point-mutation round; deletes are frequent enough to drain shards
      // back through the lone-live and empty join shapes.
      Bytes key = random_key();
      if (rng() % 2 == 0) {
        Bytes value = {static_cast<uint8_t>(rng() % 255 + 1)};
        sharded.Put(key, value);
        mono.Put(key, value);
        oracle[key] = value;
      } else {
        bool oracle_had = oracle.erase(key) > 0;
        ASSERT_EQ(sharded.Delete(key), oracle_had) << "round " << round;
        ASSERT_EQ(mono.Delete(key), oracle_had) << "round " << round;
      }
    }
    ASSERT_EQ(sharded.size(), mono.size()) << "round " << round;
    ASSERT_EQ(HexEncode(sharded.RootHash()), HexEncode(mono.RootHash())) << "round " << round;
    ASSERT_EQ(HarvestSorted(sharded), HarvestSorted(mono)) << "round " << round;
    if (rng() % 16 == 0) {
      Bytes probe = random_key();
      ASSERT_EQ(sharded.Get(probe), mono.Get(probe)) << "round " << round;
    }
  }
  // Drain to empty: the final transitions back through one and zero live
  // shards must also stay in lockstep.
  for (auto it = oracle.begin(); it != oracle.end();) {
    const Bytes key = it->first;
    it = oracle.erase(it);
    ASSERT_TRUE(sharded.Delete(key));
    ASSERT_TRUE(mono.Delete(key));
    ASSERT_EQ(HexEncode(sharded.RootHash()), HexEncode(mono.RootHash()));
    ASSERT_EQ(HarvestSorted(sharded), HarvestSorted(mono));
  }
  EXPECT_EQ(sharded.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedMptPropertyTest,
                         ::testing::Values(101, 102, 203, 204, 305));

// The parallel surface under real threads (TSan gate material): one thread
// per shard replays its slice and pre-hashes, then the bracketed harvest
// protocol runs its per-shard phase concurrently. Roots and harvested nodes
// must match a monolithic trie fed the same updates serially.
TEST(ShardedMptConcurrencyTest, ShardParallelApplyAndHarvestMatchMonolithic) {
  std::mt19937_64 rng(777);
  ShardedMpt sharded;
  MerklePatriciaTrie mono;
  NodeArchive sharded_archive;
  NodeArchive mono_archive;
  std::mutex archive_mu;
  for (int round = 0; round < 6; ++round) {
    std::array<std::vector<TrieUpdate>, ShardedMpt::kShards> slices;
    for (int i = 0; i < 300; ++i) {
      TrieUpdate update;
      update.key.resize(1 + rng() % 4);
      update.key[0] = static_cast<uint8_t>(rng());
      for (size_t b = 1; b < update.key.size(); ++b) {
        update.key[b] = static_cast<uint8_t>(rng() % 3);
      }
      if (rng() % 4 != 0) {
        update.value = {static_cast<uint8_t>(rng() % 255 + 1)};
      }
      int shard = ShardedMpt::ShardOf(BytesView(update.key.data(), update.key.size()));
      mono.ApplyDiff(std::span<const TrieUpdate>(&update, 1));
      slices[shard].push_back(std::move(update));
    }
    {
      std::vector<std::thread> threads;
      for (int s = 0; s < ShardedMpt::kShards; ++s) {
        threads.emplace_back([&, s] {
          sharded.ApplyShardDiff(s, slices[s]);
          sharded.PrehashShard(s);
        });
      }
      for (auto& t : threads) {
        t.join();
      }
    }
    ASSERT_EQ(HexEncode(sharded.RootHash()), HexEncode(mono.RootHash())) << "round " << round;
    sharded.PrepareHarvest();
    {
      std::vector<std::thread> threads;
      for (int s = 0; s < ShardedMpt::kShards; ++s) {
        threads.emplace_back([&, s] {
          HarvestSet local;
          sharded.HarvestShard(s, [&local](const Hash256& hash, BytesView encoding) {
            local.emplace_back(hash, Bytes(encoding.begin(), encoding.end()));
          });
          std::lock_guard<std::mutex> lock(archive_mu);
          for (auto& [hash, enc] : local) {
            sharded_archive[hash] = std::move(enc);
          }
        });
      }
      for (auto& t : threads) {
        t.join();
      }
    }
    sharded.FinishHarvest([&](const Hash256& hash, BytesView encoding) {
      sharded_archive[hash] = Bytes(encoding.begin(), encoding.end());
    });
    HarvestInto(mono, mono_archive);
    ASSERT_EQ(sharded_archive, mono_archive) << "round " << round;
  }
}

}  // namespace
}  // namespace pevm
