// The code-cache contract (DESIGN.md §4.6): tier-0 analysis is a pure static
// function of (bytecode, fuse) computed exactly once per code hash no matter
// how many threads race on it; superinstruction execution and logging are
// bit-equivalent to the per-op path; and cache deployment mode — cold,
// warm, per-block, uncached — is invisible in every deterministic output.
#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "src/baselines/serial.h"
#include "src/codecache/analysis.h"
#include "src/codecache/code_cache.h"
#include "src/core/parallel_evm.h"
#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/evm/eval.h"
#include "src/evm/host.h"
#include "src/evm/interpreter.h"
#include "src/state/state_view.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

const Address kSelf = Address::FromId(0xF022);
const Address kCaller = Address::FromId(0xCA11);

Bytes Code(std::initializer_list<uint8_t> bytes) { return Bytes(bytes); }

Hash256 HashOf(const Bytes& code) { return Keccak256(BytesView(code.data(), code.size())); }

// --- Tier-0 analyzer. ------------------------------------------------------

TEST(CodeAnalysisTest, JumpdestBitmapSkipsPushImmediates) {
  // PUSH1 0x5b (the immediate is NOT a jumpdest), JUMPDEST, STOP.
  Bytes code = Code({0x60, 0x5b, 0x5b, 0x00});
  auto a = AnalyzeCode(code, HashOf(code), /*fuse=*/true);
  ASSERT_EQ(a->jumpdests.size(), code.size());
  EXPECT_FALSE(a->jumpdests[0]);
  EXPECT_FALSE(a->jumpdests[1]);  // Immediate byte of the PUSH.
  EXPECT_TRUE(a->jumpdests[2]);
  EXPECT_FALSE(a->jumpdests[3]);
}

TEST(CodeAnalysisTest, FusedSegmentCoversMaximalPureRun) {
  // PUSH1 2, PUSH1 3, ADD, PUSH1 0, SSTORE, STOP: the first four instructions
  // fuse (SSTORE is not fusible), leaving two outputs on the stack.
  Bytes code = Code({0x60, 0x02, 0x60, 0x03, 0x01, 0x60, 0x00, 0x55, 0x00});
  auto a = AnalyzeCode(code, HashOf(code), /*fuse=*/true);
  ASSERT_EQ(a->segments.size(), 1u);
  const SuperSegment& seg = a->segments[0];
  EXPECT_EQ(a->segment_at[0], 0);
  EXPECT_EQ(seg.start_pc, 0u);
  EXPECT_EQ(seg.end_pc, 7u);  // First pc past the run (the SSTORE).
  EXPECT_EQ(seg.op_count, 4u);
  EXPECT_EQ(seg.pop_depth, 0u);
  EXPECT_EQ(seg.min_height, 0u);
  EXPECT_EQ(seg.max_growth, 2);
  ASSERT_EQ(seg.outputs.size(), 2u);
  // All-constant dataflow folds at analysis time: outputs are 5 (deep) and 0
  // (top), each a single kConst step.
  ASSERT_EQ(seg.outputs[0]->steps.size(), 1u);
  EXPECT_EQ(seg.outputs[0]->steps[0].kind, SuperStep::Kind::kConst);
  EXPECT_EQ(seg.outputs[0]->steps[0].imm, U256(5));
  ASSERT_EQ(seg.outputs[1]->steps.size(), 1u);
  EXPECT_EQ(seg.outputs[1]->steps[0].imm, U256(0));
  // Mid-segment pcs are not segment starts.
  for (uint32_t pc = 1; pc < seg.end_pc; ++pc) {
    EXPECT_EQ(a->segment_at[pc], -1) << "pc " << pc;
  }
}

TEST(CodeAnalysisTest, SegmentNeedsAtLeastTwoOps) {
  // A lone PUSH between non-fusible ops must not form a segment.
  Bytes code = Code({0x54, 0x60, 0x01, 0x55, 0x00});  // SLOAD PUSH1 1 SSTORE STOP.
  auto a = AnalyzeCode(code, HashOf(code), /*fuse=*/true);
  EXPECT_TRUE(a->segments.empty());
}

TEST(CodeAnalysisTest, JumpdestIsNeverFusible) {
  // PUSH1 1, JUMPDEST, PUSH1 2, ADD, STOP: the JUMPDEST splits the run, so
  // the lone leading PUSH cannot fuse and the tail (PUSH1 2, ADD) can.
  Bytes code = Code({0x60, 0x01, 0x5b, 0x60, 0x02, 0x01, 0x00});
  auto a = AnalyzeCode(code, HashOf(code), /*fuse=*/true);
  ASSERT_EQ(a->segments.size(), 1u);
  EXPECT_EQ(a->segments[0].start_pc, 3u);
  EXPECT_EQ(a->segments[0].pop_depth, 1u);  // The ADD consumes the entry top.
  EXPECT_EQ(a->segments[0].min_height, 1u);
}

TEST(CodeAnalysisTest, SegmentInputsComeFromEntryStack) {
  // ADD over two pre-existing stack values: the segment's single output is an
  // expression over entry inputs, not a constant.
  Bytes code = Code({0x01, 0x01, 0x00});  // ADD ADD STOP.
  auto a = AnalyzeCode(code, HashOf(code), /*fuse=*/true);
  ASSERT_EQ(a->segments.size(), 1u);
  const SuperSegment& seg = a->segments[0];
  EXPECT_EQ(seg.pop_depth, 3u);
  EXPECT_EQ(seg.min_height, 3u);
  EXPECT_EQ(seg.max_growth, 0);
  ASSERT_EQ(seg.outputs.size(), 1u);
  // Evaluate (a + b) + c over inputs top={1}, then 2, then 3.
  const SuperExpr& expr = *seg.outputs[0];
  std::vector<U256> inputs(expr.input_depths.size());
  U256 entry[3] = {U256(1), U256(2), U256(3)};  // entry[d] = value at depth d.
  for (size_t i = 0; i < expr.input_depths.size(); ++i) {
    inputs[i] = entry[expr.input_depths[i]];
  }
  EXPECT_EQ(EvalSuperExpr(expr, inputs), U256(6));
}

TEST(CodeAnalysisTest, InputCapSplitsDeepConsumingRuns) {
  // 40 consecutive ADDs would reference 41 entry-stack slots; the
  // kMaxSuperInputs cap must split the run deterministically.
  Bytes code(40, 0x01);
  code.push_back(0x00);
  auto a = AnalyzeCode(code, HashOf(code), /*fuse=*/true);
  ASSERT_GE(a->segments.size(), 2u);
  uint32_t fused_ops = 0;
  for (const SuperSegment& seg : a->segments) {
    EXPECT_LE(seg.pop_depth, kMaxSuperInputs);
    EXPECT_LE(seg.outputs.size(), kMaxSuperOutputs);
    fused_ops += seg.op_count;
  }
  EXPECT_GE(fused_ops, 38u);  // The split loses at most a run boundary op.
}

TEST(CodeAnalysisTest, FuseOffKeepsJumpdestsOnly) {
  Bytes code = Code({0x60, 0x02, 0x60, 0x03, 0x01, 0x5b, 0x00});
  auto a = AnalyzeCode(code, HashOf(code), /*fuse=*/false);
  EXPECT_TRUE(a->segments.empty());
  EXPECT_TRUE(a->jumpdests[5]);
}

TEST(CodeAnalysisTest, AnalysisIsAPureFunctionOfTheBytes) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes code(1 + rng() % 96);
    for (auto& b : code) {
      b = static_cast<uint8_t>(rng() & 0xff);
    }
    auto a = AnalyzeCode(code, HashOf(code), /*fuse=*/true);
    auto b = AnalyzeCode(code, HashOf(code), /*fuse=*/true);
    ASSERT_EQ(a->segments.size(), b->segments.size());
    ASSERT_EQ(a->jumpdests, b->jumpdests);
    ASSERT_EQ(a->segment_at, b->segment_at);
    for (size_t i = 0; i < a->segments.size(); ++i) {
      ASSERT_EQ(a->segments[i].start_pc, b->segments[i].start_pc);
      ASSERT_EQ(a->segments[i].end_pc, b->segments[i].end_pc);
      ASSERT_EQ(a->segments[i].total_gas, b->segments[i].total_gas);
      ASSERT_EQ(a->segments[i].outputs.size(), b->segments[i].outputs.size());
    }
  }
}

// --- The cache itself. -----------------------------------------------------

TEST(CodeCacheTest, AnalyzesOncePerHashAndCountsHits) {
  CodeCache cache;
  Bytes code = Code({0x60, 0x01, 0x60, 0x02, 0x01, 0x00});
  Hash256 hash = HashOf(code);
  auto first = cache.Analyze(code, &hash);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cache.Analyze(code, &hash).get(), first.get());
  }
  CodeCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CodeCacheTest, NullHashFallsBackToHashingTheBytes) {
  CodeCache cache;
  Bytes code = Code({0x60, 0x2a, 0x60, 0x00, 0x55, 0x00});
  Hash256 hash = HashOf(code);
  auto a = cache.Analyze(code, nullptr);
  auto b = cache.Analyze(code, &hash);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->hash, hash);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(CodeCacheTest, PromotesAtThresholdExactlyOnce) {
  CodeCacheConfig config;
  config.promote_threshold = 3;
  CodeCache cache(config);
  Bytes code = Code({0x60, 0x01, 0x60, 0x02, 0x01, 0x00});
  Hash256 hash = HashOf(code);
  auto a1 = cache.Analyze(code, &hash);
  EXPECT_EQ(a1->program.load(), nullptr);
  cache.Analyze(code, &hash);
  EXPECT_EQ(a1->program.load(), nullptr);
  cache.Analyze(code, &hash);  // Third invocation crosses the threshold.
  const DecodedProgram* program = a1->program.load();
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->at.size(), code.size());
  // PUSH immediates are materialized and next-pc skips them.
  EXPECT_EQ(program->at[0].op, Opcode::kPush1);
  EXPECT_EQ(program->at[0].immediate, U256(1));
  EXPECT_EQ(program->at[0].next_pc, 2u);
  cache.Analyze(code, &hash);
  EXPECT_EQ(a1->program.load(), program);  // Stable after promotion.
  EXPECT_EQ(cache.GetStats().promotions, 1u);
}

// 16 real threads hammer one cache over a small code set: each hash must be
// analyzed exactly once and promoted exactly once, and every thread must see
// the same analysis object. (scripts/check_tsan.sh runs this under TSan.)
TEST(CodeCacheTest, ConcurrentLookupsAnalyzeOncePerHash) {
  CodeCacheConfig config;
  config.promote_threshold = 4;
  CodeCache cache(config);
  constexpr int kCodes = 8;
  constexpr int kThreads = 16;
  constexpr int kIters = 200;
  std::vector<Bytes> codes;
  std::vector<Hash256> hashes;
  for (int c = 0; c < kCodes; ++c) {
    Bytes code = Code({0x60, static_cast<uint8_t>(c), 0x60, 0x07, 0x02, 0x00});
    hashes.push_back(HashOf(code));
    codes.push_back(std::move(code));
  }
  std::vector<std::vector<const CodeAnalysis*>> seen(kThreads,
                                                     std::vector<const CodeAnalysis*>(kCodes));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        int c = (t + i) % kCodes;
        auto a = cache.Analyze(codes[static_cast<size_t>(c)], &hashes[static_cast<size_t>(c)]);
        seen[static_cast<size_t>(t)][static_cast<size_t>(c)] = a.get();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  CodeCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(kCodes));
  EXPECT_EQ(stats.entries, static_cast<uint64_t>(kCodes));
  EXPECT_EQ(stats.promotions, static_cast<uint64_t>(kCodes));
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads) * kIters - kCodes);
  for (int c = 0; c < kCodes; ++c) {
    for (int t = 1; t < kThreads; ++t) {
      ASSERT_EQ(seen[static_cast<size_t>(t)][static_cast<size_t>(c)],
                seen[0][static_cast<size_t>(c)]);
    }
    ASSERT_NE(seen[0][static_cast<size_t>(c)]->program.load(), nullptr);
  }
}

// --- Interpreter equivalence: fused vs per-op. -----------------------------

Bytes RandomCode(std::mt19937_64& rng, size_t max_len) {
  size_t len = 1 + rng() % max_len;
  Bytes code(len);
  for (auto& b : code) {
    switch (rng() % 4) {
      case 0:
        b = static_cast<uint8_t>(0x60 + rng() % 16);  // Small pushes.
        break;
      case 1:
        b = static_cast<uint8_t>(rng() % 0x20);  // Arithmetic block.
        break;
      case 2:
        b = static_cast<uint8_t>(0x50 + rng() % 16);  // Memory/storage/flow.
        break;
      default:
        b = static_cast<uint8_t>(rng() & 0xff);
        break;
    }
  }
  return code;
}

struct RunOutcome {
  EvmStatus status;
  int64_t gas_left;
  Bytes output;
  uint64_t state_digest;
  uint64_t instructions;
  size_t log_entries;
};

RunOutcome RunWith(const Bytes& code, uint64_t data_seed, CodeProvider* provider,
                   bool with_log) {
  WorldState world;
  world.SetCode(kSelf, code);
  world.SetBalance(kSelf, U256(1'000'000));
  world.SetStorage(kSelf, U256(0), U256(42));
  StateView view(world);
  StateViewHost host(view);
  BlockContext block;
  TxContext tx{kCaller, U256(1)};
  SsaBuilder builder;
  Interpreter interp(host, block, tx, with_log ? &builder : nullptr, provider);
  Message msg;
  msg.code_address = kSelf;
  msg.storage_address = kSelf;
  msg.caller = kCaller;
  msg.gas = 200'000;
  std::mt19937_64 rng(data_seed);
  msg.data.resize(rng() % 68);
  for (auto& b : msg.data) {
    b = static_cast<uint8_t>(rng() & 0xff);
  }
  EvmResult r = interp.Execute(msg);
  RunOutcome out;
  out.status = r.status;
  out.gas_left = r.gas_left;
  out.output = std::move(r.output);
  WorldState post = world;
  post.Apply(view.write_set());
  out.state_digest = post.Digest();
  out.instructions = interp.stats().instructions;
  out.log_entries = builder.TakeLog().size();
  return out;
}

// The fused fast path must be invisible in everything except log granularity:
// status, gas, output, state, and the instruction count all match the per-op
// interpreter on arbitrary bytecode, with and without the SSA builder.
TEST(FusedExecutionTest, RandomBytecodeMatchesPerOpExecution) {
  std::mt19937_64 rng(0xCACE);
  UncachedCodeProvider provider(/*fuse=*/true);
  for (int i = 0; i < 600; ++i) {
    Bytes code = RandomCode(rng, 96);
    uint64_t data_seed = rng();
    bool with_log = (i % 2) == 0;
    RunOutcome fused = RunWith(code, data_seed, &provider, with_log);
    RunOutcome plain = RunWith(code, data_seed, nullptr, with_log);
    ASSERT_EQ(fused.status, plain.status) << HexEncode(code);
    ASSERT_EQ(fused.gas_left, plain.gas_left) << HexEncode(code);
    ASSERT_EQ(fused.output, plain.output) << HexEncode(code);
    ASSERT_EQ(fused.state_digest, plain.state_digest) << HexEncode(code);
    ASSERT_EQ(fused.instructions, plain.instructions) << HexEncode(code);
    if (with_log) {
      // Superinstruction logging can only shrink the log.
      ASSERT_LE(fused.log_entries, plain.log_entries) << HexEncode(code);
    }
  }
}

// Tier-1 dispatch must be bit-identical to tier-0 dispatch: run the same code
// through a cache below and above its promotion threshold.
TEST(FusedExecutionTest, PromotedDispatchMatchesUnpromoted) {
  std::mt19937_64 rng(0xBEEF);
  for (int i = 0; i < 200; ++i) {
    Bytes code = RandomCode(rng, 96);
    uint64_t data_seed = rng();
    CodeCacheConfig cold_config;
    cold_config.promote_threshold = 1'000'000;  // Never promotes.
    CodeCache cold(cold_config);
    CodeCacheConfig hot_config;
    hot_config.promote_threshold = 1;  // Promotes on first invocation.
    CodeCache hot(hot_config);
    RunOutcome tier0 = RunWith(code, data_seed, &cold, /*with_log=*/true);
    RunOutcome tier1 = RunWith(code, data_seed, &hot, /*with_log=*/true);
    ASSERT_EQ(tier1.status, tier0.status) << HexEncode(code);
    ASSERT_EQ(tier1.gas_left, tier0.gas_left) << HexEncode(code);
    ASSERT_EQ(tier1.output, tier0.output) << HexEncode(code);
    ASSERT_EQ(tier1.state_digest, tier0.state_digest) << HexEncode(code);
    ASSERT_EQ(tier1.instructions, tier0.instructions) << HexEncode(code);
    ASSERT_EQ(tier1.log_entries, tier0.log_entries) << HexEncode(code);
  }
}

// Redo over fused logs: structured storage programs speculated at
// superinstruction granularity, perturbed, then repaired — the patched write
// set must match full re-execution exactly (the kSuperOp redo case).
TEST(FusedExecutionTest, RedoOverFusedLogsMatchesReexecutionOracle) {
  std::mt19937_64 rng(0xF00D);
  UncachedCodeProvider provider(/*fuse=*/true);
  int checked = 0;
  int super_entries = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Bytes code;
    std::mt19937_64 prog_rng(rng());
    auto push1 = [&](uint8_t v) {
      code.push_back(0x60);
      code.push_back(v);
    };
    int ops = 2 + static_cast<int>(prog_rng() % 6);
    for (int i = 0; i < ops; ++i) {
      push1(static_cast<uint8_t>(prog_rng() % 4));  // Slot.
      code.push_back(0x54);                         // SLOAD.
      push1(static_cast<uint8_t>(1 + prog_rng() % 9));
      code.push_back(static_cast<uint8_t>(prog_rng() % 2 == 0 ? 0x01 : 0x03));  // ADD/SUB.
      // A shuffle run after the arithmetic so fused segments with real
      // (non-constant) inputs appear in the log.
      code.push_back(0x80);  // DUP1.
      code.push_back(0x01);  // ADD -> 2x.
      push1(static_cast<uint8_t>(prog_rng() % 4));  // Target slot.
      code.push_back(0x55);                         // SSTORE.
    }
    code.push_back(0x00);  // STOP.

    WorldState world;
    world.SetCode(kSelf, code);
    for (uint64_t s = 0; s < 4; ++s) {
      world.SetStorage(kSelf, U256(s), U256(100 + s * 10));
    }
    StateView view(world);
    StateViewHost host(view);
    BlockContext block;
    TxContext tx{kCaller, U256(1)};
    SsaBuilder builder;
    Interpreter interp(host, block, tx, &builder, &provider);
    Message msg;
    msg.code_address = kSelf;
    msg.storage_address = kSelf;
    msg.caller = kCaller;
    msg.gas = 1'000'000;
    ASSERT_EQ(interp.Execute(msg).status, EvmStatus::kSuccess);
    TxLog log = builder.TakeLog();
    for (const OpLogEntry& entry : log.entries) {
      super_entries += entry.op == Opcode::kSuperOp ? 1 : 0;
    }

    WorldState perturbed = world;
    StateKey key = StateKey::Storage(kSelf, U256(prog_rng() % 4));
    U256 new_value(500 + prog_rng() % 100);
    perturbed.Set(key, new_value);
    ConflictMap conflicts{{key, new_value}};
    RedoResult redo =
        RunRedo(log, conflicts, [&](const StateKey& k) { return perturbed.Get(k); });

    StateView oracle_view(perturbed);
    StateViewHost oracle_host(oracle_view);
    Interpreter oracle_interp(oracle_host, block, tx);
    ASSERT_EQ(oracle_interp.Execute(msg).status, EvmStatus::kSuccess);
    if (!redo.success) {
      continue;  // Declining is always sound.
    }
    ++checked;
    const WriteSet& oracle_writes = oracle_view.write_set();
    ASSERT_EQ(redo.write_set.size(), oracle_writes.size()) << HexEncode(code);
    for (const auto& [k, v] : oracle_writes) {
      ASSERT_EQ(redo.write_set.at(k), v) << HexEncode(code) << " key " << k.ToString();
    }
  }
  EXPECT_GT(checked, 50);       // The repair property must not be vacuous...
  EXPECT_GT(super_entries, 0);  // ...and must actually cover kSuperOp entries.
}

// --- Executor-level differential battery. ----------------------------------

struct ModeResult {
  std::string root;
  std::vector<BlockReport> reports;
};

class CodeCacheDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadConfig config;
    config.seed = 0xCC5;
    config.transactions_per_block = 120;
    config.users = 800;
    config.tokens = 6;
    config.pools = 3;
    gen_.emplace(config);
    genesis_ = gen_->MakeGenesis();
    blocks_.push_back(gen_->MakeHotContractBlock(120));
    blocks_.push_back(gen_->MakeBlock());
  }

  ModeResult Run(CodeCacheMode mode, int os_threads, int promote_threshold = 8) {
    ExecOptions options;
    options.threads = 8;
    options.os_threads = os_threads;
    options.code_cache.mode = mode;
    options.code_cache.promote_threshold = promote_threshold;
    WorldState state = genesis_;
    ParallelEvmExecutor executor(options);
    ModeResult result;
    for (const Block& block : blocks_) {
      result.reports.push_back(executor.Execute(block, state));
    }
    result.root = HexEncode(state.StateRoot());
    return result;
  }

  static void ExpectDeterministicFieldsEqual(const BlockReport& a, const BlockReport& b) {
    EXPECT_EQ(a.makespan_ns, b.makespan_ns);
    EXPECT_EQ(a.conflicts, b.conflicts);
    EXPECT_EQ(a.redo_success, b.redo_success);
    EXPECT_EQ(a.redo_fail, b.redo_fail);
    EXPECT_EQ(a.full_reexecutions, b.full_reexecutions);
    EXPECT_EQ(a.redo_entries_reexecuted, b.redo_entries_reexecuted);
    EXPECT_EQ(a.redo_ns, b.redo_ns);
    EXPECT_EQ(a.oplog_entries, b.oplog_entries);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.conflict_keys, b.conflict_keys);
    EXPECT_EQ(a.receipts, b.receipts);
  }

  std::optional<WorkloadGenerator> gen_;
  WorldState genesis_;
  std::vector<Block> blocks_;
};

// Cold (per-block), warm (shared, pre-warmed by a prior run), uncached, and
// every OS-thread count: bit-identical deterministic reports. This is the
// §4.6 inertness claim at executor granularity — cache residency and tier-1
// hotness cannot leak into results.
TEST_F(CodeCacheDifferentialTest, CacheModeAndWarmthAreInvisibleInResults) {
  Run(CodeCacheMode::kShared, /*os_threads=*/4);  // Warm the shared cache.
  ModeResult base = Run(CodeCacheMode::kShared, /*os_threads=*/1);
  for (CodeCacheMode mode :
       {CodeCacheMode::kShared, CodeCacheMode::kPerBlock, CodeCacheMode::kUncached}) {
    for (int os_threads : {1, 4, 16}) {
      SCOPED_TRACE(testing::Message()
                   << "mode=" << static_cast<int>(mode) << " os_threads=" << os_threads);
      ModeResult other = Run(mode, os_threads);
      EXPECT_EQ(base.root, other.root);
      ASSERT_EQ(base.reports.size(), other.reports.size());
      for (size_t b = 0; b < base.reports.size(); ++b) {
        SCOPED_TRACE(testing::Message() << "block=" << b);
        ExpectDeterministicFieldsEqual(base.reports[b], other.reports[b]);
      }
    }
  }
  // An extreme promotion threshold (everything promotes immediately) is just
  // as invisible: tier 1 is dispatch speed, not semantics.
  ModeResult eager = Run(CodeCacheMode::kPerBlock, /*os_threads=*/4, /*promote_threshold=*/1);
  EXPECT_EQ(base.root, eager.root);
  for (size_t b = 0; b < base.reports.size(); ++b) {
    ExpectDeterministicFieldsEqual(base.reports[b], eager.reports[b]);
  }
}

// kOff removes the provider: results (roots, receipts, gas) are unchanged,
// but the SSA log returns to per-op granularity — strictly more entries on a
// workload with fusible runs. This is the §6.4 log-overhead ablation pair.
TEST_F(CodeCacheDifferentialTest, DisabledCacheKeepsResultsButLogsPerOp) {
  ModeResult fused = Run(CodeCacheMode::kShared, /*os_threads=*/4);
  ModeResult off = Run(CodeCacheMode::kOff, /*os_threads=*/4);
  EXPECT_EQ(fused.root, off.root);
  ASSERT_EQ(fused.reports.size(), off.reports.size());
  uint64_t fused_entries = 0;
  uint64_t off_entries = 0;
  for (size_t b = 0; b < fused.reports.size(); ++b) {
    EXPECT_EQ(fused.reports[b].receipts, off.reports[b].receipts) << "block " << b;
    EXPECT_EQ(fused.reports[b].instructions, off.reports[b].instructions) << "block " << b;
    fused_entries += fused.reports[b].oplog_entries;
    off_entries += off.reports[b].oplog_entries;
  }
  EXPECT_LT(fused_entries, off_entries);
}

// The serial oracle agrees with every cached parallel mode, closing the loop
// against an executor that never builds logs at all.
TEST_F(CodeCacheDifferentialTest, CachedParallelMatchesSerialOracle) {
  ExecOptions options;
  options.threads = 8;
  WorldState serial_state = genesis_;
  SerialExecutor serial(options);
  for (const Block& block : blocks_) {
    serial.Execute(block, serial_state);
  }
  std::string oracle_root = HexEncode(serial_state.StateRoot());
  for (CodeCacheMode mode : {CodeCacheMode::kShared, CodeCacheMode::kPerBlock,
                             CodeCacheMode::kUncached, CodeCacheMode::kOff}) {
    EXPECT_EQ(Run(mode, /*os_threads=*/4).root, oracle_root)
        << "mode " << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace pevm
