// Tests for the §7 proposer/validator split: schedule generation, scheduled
// validator execution equivalence, the validation-cost saving, and detection
// of lying schedules (paranoid mode).
#include <gtest/gtest.h>

#include "src/baselines/serial.h"
#include "src/core/parallel_evm.h"
#include "src/core/scheduled.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

class ScheduledTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadConfig config;
    config.seed = 77;
    config.transactions_per_block = 100;
    config.users = 1200;
    config.tokens = 6;
    config.pools = 3;
    gen_.emplace(config);
    genesis_ = gen_->MakeGenesis();
    block_ = gen_->MakeBlock();
    options_.threads = 8;
  }

  std::optional<WorkloadGenerator> gen_;
  WorldState genesis_;
  Block block_;
  ExecOptions options_;
};

TEST_F(ScheduledTest, ProposerMatchesPlainParallelEvm) {
  WorldState s1 = genesis_;
  WorldState s2 = genesis_;
  ParallelEvmExecutor pevm(options_);
  BlockReport plain = pevm.Execute(block_, s1);
  ProposalResult proposal = ProposeBlock(block_, s2, options_);
  EXPECT_EQ(s1.Digest(), s2.Digest());
  EXPECT_EQ(plain.conflicts, proposal.report.conflicts);
  EXPECT_EQ(plain.redo_success, proposal.report.redo_success);
  ASSERT_EQ(proposal.schedule.transactions.size(), block_.transactions.size());
}

TEST_F(ScheduledTest, ScheduleClassifiesEveryOutcome) {
  WorldState state = genesis_;
  ProposalResult proposal = ProposeBlock(block_, state, options_);
  int clean = 0;
  int redo = 0;
  int fallback = 0;
  for (const TxSchedule& plan : proposal.schedule.transactions) {
    switch (plan.plan) {
      case TxSchedule::Plan::kClean:
        EXPECT_TRUE(plan.conflict_keys.empty());
        ++clean;
        break;
      case TxSchedule::Plan::kRedo:
        EXPECT_FALSE(plan.conflict_keys.empty());
        ++redo;
        break;
      case TxSchedule::Plan::kFallback:
        ++fallback;
        break;
    }
  }
  EXPECT_EQ(redo, proposal.report.redo_success);
  EXPECT_EQ(fallback, proposal.report.full_reexecutions);
  EXPECT_GT(clean, 0);
  EXPECT_GT(redo, 0);  // The hot-spot workload must exercise the redo plan.
}

TEST_F(ScheduledTest, ValidatorReproducesProposerState) {
  WorldState proposer_state = genesis_;
  ProposalResult proposal = ProposeBlock(block_, proposer_state, options_);
  WorldState validator_state = genesis_;
  BlockReport validator = ExecuteWithSchedule(block_, proposal.schedule, validator_state,
                                              options_);
  EXPECT_EQ(proposer_state.Digest(), validator_state.Digest());
  EXPECT_EQ(HexEncode(proposer_state.StateRoot()), HexEncode(validator_state.StateRoot()));
  EXPECT_EQ(validator.redo_success, proposal.report.redo_success);
}

TEST_F(ScheduledTest, ValidatorIsFasterThanUnscheduledExecution) {
  WorldState s1 = genesis_;
  ProposalResult proposal = ProposeBlock(block_, s1, options_);
  WorldState s2 = genesis_;
  ParallelEvmExecutor pevm(options_);
  BlockReport plain = pevm.Execute(block_, s2);
  WorldState s3 = genesis_;
  BlockReport scheduled = ExecuteWithSchedule(block_, proposal.schedule, s3, options_);
  // The validator skips read-set validation for clean transactions and SSA
  // logging for everything but redo transactions.
  EXPECT_LT(scheduled.makespan_ns, plain.makespan_ns);
}

TEST_F(ScheduledTest, ParanoidModeMatchesTrustingMode) {
  WorldState s1 = genesis_;
  ProposalResult proposal = ProposeBlock(block_, s1, options_);
  WorldState s2 = genesis_;
  WorldState s3 = genesis_;
  BlockReport trusting = ExecuteWithSchedule(block_, proposal.schedule, s2, options_);
  BlockReport paranoid = ExecuteWithSchedule(block_, proposal.schedule, s3, options_,
                                             /*paranoid=*/true);
  EXPECT_EQ(s2.Digest(), s3.Digest());
  EXPECT_EQ(paranoid.conflicts, 0);  // An honest schedule has no deviations.
  (void)trusting;
}

TEST_F(ScheduledTest, ParanoidModeRepairsLyingSchedule) {
  WorldState proposer_state = genesis_;
  ProposalResult proposal = ProposeBlock(block_, proposer_state, options_);
  // Corrupt the schedule: claim every redo transaction was clean.
  BlockSchedule lying = proposal.schedule;
  int corrupted = 0;
  for (TxSchedule& plan : lying.transactions) {
    if (plan.plan == TxSchedule::Plan::kRedo) {
      plan.plan = TxSchedule::Plan::kClean;
      plan.conflict_keys.clear();
      ++corrupted;
    }
  }
  ASSERT_GT(corrupted, 0);
  WorldState validator_state = genesis_;
  BlockReport report = ExecuteWithSchedule(block_, lying, validator_state, options_,
                                           /*paranoid=*/true);
  // Paranoid validation caught every lie and still produced the right state.
  EXPECT_EQ(report.conflicts, corrupted);
  EXPECT_EQ(proposer_state.Digest(), validator_state.Digest());
}

TEST_F(ScheduledTest, LyingScheduleWithoutParanoiaChangesTheRoot) {
  // The production defense: a trusting validator applies the lie, but the
  // resulting state root no longer matches the proposer's — the block is
  // rejected at a higher layer.
  WorldState proposer_state = genesis_;
  ProposalResult proposal = ProposeBlock(block_, proposer_state, options_);
  BlockSchedule lying = proposal.schedule;
  bool corrupted = false;
  for (TxSchedule& plan : lying.transactions) {
    if (plan.plan == TxSchedule::Plan::kRedo) {
      plan.plan = TxSchedule::Plan::kClean;
      plan.conflict_keys.clear();
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  WorldState validator_state = genesis_;
  ExecuteWithSchedule(block_, lying, validator_state, options_);
  EXPECT_NE(proposer_state.Digest(), validator_state.Digest());
}

TEST_F(ScheduledTest, EmptyScheduleFallsBackSerially) {
  // A missing/short schedule degrades to serial re-execution, never to a
  // wrong state.
  WorldState s1 = genesis_;
  SerialExecutor serial(options_);
  serial.Execute(block_, s1);
  WorldState s2 = genesis_;
  BlockSchedule empty;
  ExecuteWithSchedule(block_, empty, s2, options_);
  EXPECT_EQ(s1.Digest(), s2.Digest());
}

}  // namespace
}  // namespace pevm
