// Query-tier battery (DESIGN.md §4.7): root-pinned snapshots served while the
// chain pipeline runs must be (a) exact — every response bit-identical to
// evaluating the same request against a serial replay stopped at the
// response's pinned root — and (b) inert — hammering the tier at any serving
// thread count leaves every root and deterministic BlockReport field
// bit-identical to not running it.
//
// Suites:
//   SnapshotRegistryTest  — MVCC unit tests: as-of reads, retention window,
//                           deferred eviction under a live pin, fold
//                           compaction correctness.
//   QueryEngineTest       — the serving pool against a static oracle state:
//                           every kind, eth_call write-discard, unknown
//                           roots, stop/reject, backpressure.
//   QueryInertnessTest    — chain runs with the tier off vs hammered-on
//                           compare bit-identically; abort mid-query.
//   QueryOracleTest       — randomized battery across executors and OS
//                           thread counts: mid-pipeline responses and
//                           post-run pinned reads checked against per-block
//                           serial-replay states.
//
// Suite names are load-bearing: CI and scripts/check_tsan.sh select by them.
// Repro flags (hence the custom main, like differential_test):
//   ./tests/query_test --seed=<seed> --blocks=1
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/baselines/serial.h"
#include "src/chain/chain_runner.h"
#include "src/query/query_engine.h"
#include "src/query/snapshot.h"
#include "src/state/state_view.h"
#include "src/workload/block_gen.h"
#include "src/workload/contracts.h"

namespace pevm {

constexpr uint64_t kDefaultSeed = 97'000;
constexpr int kDefaultBlocks = 40;
uint64_t g_seed = kDefaultSeed;
int g_blocks = kDefaultBlocks;

namespace {

Hash256 FakeRoot(uint8_t tag) {
  Hash256 root{};
  root[0] = tag;
  root[31] = 0xAB;
  return root;
}

// --- SnapshotRegistryTest ---------------------------------------------------

const Address kAlice = Address::FromId(0xA11CE);
const Address kBob = Address::FromId(0xB0B);

// A tiny hand-built chain: block i sets Alice's balance to 100 + i and writes
// storage slot i of Bob's "contract". Roots are tags, not real trie roots —
// the registry treats them as opaque names.
StateDiff TinyDiff(uint64_t i) {
  StateDiff diff;
  diff.emplace_back(StateKey::Balance(kAlice), U256(100 + i));
  diff.emplace_back(StateKey::Storage(kBob, U256(i)), U256(1000 + i));
  // Journal order matters upstream; give the registry a same-key overwrite to
  // collapse (last writer wins within a block).
  diff.emplace_back(StateKey::Balance(kAlice), U256(200 + i));
  return diff;
}

U256 OracleAliceBalance(uint64_t at_block) {
  return at_block == 0 ? U256(7) : U256(200 + at_block);
}

WorldState TinyBase() {
  WorldState base;
  base.SetBalance(kAlice, U256(7));
  base.SetNonce(kAlice, 3);
  return base;
}

TEST(SnapshotRegistryTest, SeedSnapshotReadableAtConstruction) {
  WorldState base = TinyBase();
  SnapshotRegistry registry(base, FakeRoot(0), 0, 4);
  SnapshotHandle handle = registry.AcquireLatest();
  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(handle.block_index(), 0u);
  EXPECT_EQ(handle.root(), FakeRoot(0));
  EXPECT_EQ(handle.GetBalance(kAlice), U256(7));
  EXPECT_EQ(handle.GetNonce(kAlice), 3u);
  EXPECT_EQ(handle.GetBalance(kBob), U256(0));  // Absent account reads zero.
  EXPECT_EQ(registry.live_pins(), 1u);
  handle.release();
  EXPECT_EQ(registry.live_pins(), 0u);
}

TEST(SnapshotRegistryTest, ReadsAreAsOfThePinnedBlock) {
  SnapshotRegistry registry(TinyBase(), FakeRoot(0), 0, 8);
  std::vector<SnapshotHandle> pins;
  pins.push_back(registry.AcquireLatest());  // Pin block 0 before publishing.
  for (uint64_t i = 1; i <= 5; ++i) {
    registry.Publish(i, FakeRoot(static_cast<uint8_t>(i)), TinyDiff(i));
    pins.push_back(registry.AcquireLatest());
  }
  // Every pin still reads its own block's values — MVCC, not latest-wins.
  for (uint64_t i = 0; i <= 5; ++i) {
    EXPECT_EQ(pins[i].block_index(), i);
    EXPECT_EQ(pins[i].GetBalance(kAlice), OracleAliceBalance(i)) << "block " << i;
    for (uint64_t slot = 1; slot <= 5; ++slot) {
      U256 expect = slot <= i ? U256(1000 + slot) : U256(0);
      EXPECT_EQ(pins[i].GetStorage(kBob, U256(slot)), expect)
          << "block " << i << " slot " << slot;
    }
  }
  EXPECT_EQ(registry.latest_block(), 5u);
  EXPECT_EQ(registry.stats().published, 6u);
}

TEST(SnapshotRegistryTest, RetentionWindowBoundsAcquirableRoots) {
  SnapshotRegistry registry(TinyBase(), FakeRoot(0), 0, 2);
  for (uint64_t i = 1; i <= 5; ++i) {
    registry.Publish(i, FakeRoot(static_cast<uint8_t>(i)), TinyDiff(i));
    EXPECT_LE(registry.retained(), 2u);
  }
  // Only the newest two roots answer AcquireAt.
  EXPECT_FALSE(registry.AcquireAt(FakeRoot(0)).valid());
  EXPECT_FALSE(registry.AcquireAt(FakeRoot(3)).valid());
  EXPECT_TRUE(registry.AcquireAt(FakeRoot(4)).valid());
  EXPECT_TRUE(registry.AcquireAt(FakeRoot(5)).valid());
  EXPECT_FALSE(registry.AcquireAt(FakeRoot(77)).valid());  // Never existed.
  SnapshotStats stats = registry.stats();
  EXPECT_EQ(stats.retired, 4u);  // Blocks 0..3 left the window.
  EXPECT_EQ(stats.acquire_misses, 3u);
  // Nothing was pinned, so nothing deferred; old versions folded away.
  EXPECT_EQ(stats.evictions_deferred, 0u);
  EXPECT_GT(stats.versions_folded, 0u);
}

TEST(SnapshotRegistryTest, LivePinDefersEvictionAndStaysExact) {
  SnapshotRegistry registry(TinyBase(), FakeRoot(0), 0, 2);
  registry.Publish(1, FakeRoot(1), TinyDiff(1));
  SnapshotHandle pinned = registry.AcquireAt(FakeRoot(1));
  ASSERT_TRUE(pinned.valid());

  // Push block 1 far out of the retention window while it stays pinned.
  for (uint64_t i = 2; i <= 8; ++i) {
    registry.Publish(i, FakeRoot(static_cast<uint8_t>(i)), TinyDiff(i));
  }
  SnapshotStats mid = registry.stats();
  EXPECT_GE(mid.evictions_deferred, 1u);  // The retire found our live pin.
  // The long-running reader still sees exactly block 1's state: the pin held
  // the prune floor at 1, so nothing it can reach was folded.
  EXPECT_EQ(pinned.GetBalance(kAlice), OracleAliceBalance(1));
  EXPECT_EQ(pinned.GetStorage(kBob, U256(1)), U256(1001));
  EXPECT_EQ(pinned.GetStorage(kBob, U256(2)), U256(0));  // Future write invisible.
  EXPECT_FALSE(registry.AcquireAt(FakeRoot(1)).valid());  // Retired: no NEW pins.

  // Release: the floor advances, the deferred prune folds blocks ≤ 6, and the
  // newest snapshots still read exactly.
  pinned.release();
  EXPECT_EQ(registry.live_pins(), 0u);
  EXPECT_GT(registry.stats().versions_folded, mid.versions_folded);
  SnapshotHandle latest = registry.AcquireLatest();
  EXPECT_EQ(latest.GetBalance(kAlice), OracleAliceBalance(8));
  for (uint64_t slot = 1; slot <= 8; ++slot) {
    EXPECT_EQ(latest.GetStorage(kBob, U256(slot)), U256(1000 + slot)) << "slot " << slot;
  }
}

TEST(SnapshotRegistryTest, FoldedValuesServeChainMisses) {
  // Key written once in block 1, never again: after pruning, reads at newer
  // blocks must resolve through the folded map, not lose the value.
  SnapshotRegistry registry(TinyBase(), FakeRoot(0), 0, 2);
  StateDiff once;
  once.emplace_back(StateKey::Storage(kBob, U256(0xDEAD)), U256(42));
  registry.Publish(1, FakeRoot(1), once);
  for (uint64_t i = 2; i <= 6; ++i) {
    registry.Publish(i, FakeRoot(static_cast<uint8_t>(i)), StateDiff{});
  }
  SnapshotHandle latest = registry.AcquireLatest();
  EXPECT_EQ(latest.GetStorage(kBob, U256(0xDEAD)), U256(42));
  EXPECT_GE(registry.stats().versions_folded, 1u);
  EXPECT_EQ(registry.version_keys(), 0u);  // Chain fully compacted.
}

TEST(SnapshotRegistryTest, MoveTransfersThePin) {
  SnapshotRegistry registry(TinyBase(), FakeRoot(0), 0, 2);
  SnapshotHandle a = registry.AcquireLatest();
  EXPECT_EQ(registry.live_pins(), 1u);
  SnapshotHandle b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from is tested.
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(registry.live_pins(), 1u);  // One pin, not two.
  b.release();
  EXPECT_EQ(registry.live_pins(), 0u);
}

// --- QueryEngineTest --------------------------------------------------------

WorkloadConfig QueryTestConfig(uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.transactions_per_block = 48;
  config.users = 200;
  config.tokens = 5;
  config.pools = 3;
  config.funds = 2;
  return config;
}

// Field-by-field response equality with readable failure output. wall_ns is
// deliberately excluded — it is the one field allowed to differ.
void ExpectResponsesIdentical(const QueryResponse& got, const QueryResponse& want,
                              const std::string& label) {
  EXPECT_EQ(got.status, want.status) << label;
  EXPECT_EQ(got.block_index, want.block_index) << label;
  EXPECT_EQ(HexEncode(got.root), HexEncode(want.root)) << label;
  EXPECT_EQ(got.value, want.value) << label;
  EXPECT_EQ(got.bytes, want.bytes) << label;
  EXPECT_EQ(got.call_status, want.call_status) << label;
  EXPECT_EQ(got.gas_used, want.gas_used) << label;
  EXPECT_EQ(got.writes_discarded, want.writes_discarded) << label;
}

TEST(QueryEngineTest, EveryKindMatchesTheOracleReader) {
  WorkloadGenerator gen(QueryTestConfig(1));
  WorldState genesis = gen.MakeGenesis();
  Hash256 root = genesis.StateRoot();
  SnapshotRegistry registry(genesis, root, 0, 4);
  QueryEngineOptions options;
  options.threads = 4;
  QueryEngine engine(registry, options);

  QueryWorkloadConfig qc;
  std::vector<TimedQuery> load = gen.MakeQueryLoad(400, qc);
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(load.size());
  for (const TimedQuery& timed : load) {
    futures.push_back(engine.Submit(timed.request));
  }
  WorldStateReader oracle(genesis);
  for (size_t i = 0; i < load.size(); ++i) {
    QueryResponse got = futures[i].get();
    ASSERT_TRUE(got.ok()) << "query " << i;
    QueryResponse want = EvalQuery(load[i].request, oracle, 0, root);
    ExpectResponsesIdentical(got, want,
                             std::string("query ") + std::to_string(i) + " kind " +
                                 QueryKindName(load[i].request.kind));
  }
  QueryStats stats = engine.Stop();
  EXPECT_EQ(stats.served, load.size());
  EXPECT_EQ(stats.unknown_root, 0u);
  for (int k = 0; k < kQueryKinds; ++k) {
    EXPECT_GT(stats.by_kind[k], 0u) << QueryKindName(static_cast<QueryKind>(k))
                                    << " never sampled: vacuous mix coverage";
  }
}

TEST(QueryEngineTest, EthCallWritesAreDiscarded) {
  WorkloadGenerator gen(QueryTestConfig(2));
  WorldState genesis = gen.MakeGenesis();
  Hash256 root = genesis.StateRoot();
  SnapshotRegistry registry(genesis, root, 0, 4);
  QueryEngine engine(registry);

  // A transfer pushed through eth_call executes (both balance slots written
  // in the sandbox view) but mutates nothing: the balanceOf afterwards still
  // reads the genesis balance.
  Address token = gen.TokenAddress(0);
  Address from = gen.UserAddress(1);
  Address to = gen.UserAddress(2);
  U256 before = genesis.GetStorage(token, Erc20BalanceSlot(from));
  ASSERT_NE(before, U256(0));

  QueryRequest transfer;
  transfer.kind = QueryKind::kCall;
  transfer.account = token;
  transfer.caller = from;
  transfer.calldata = Erc20TransferCall(to, U256(5));
  QueryResponse response = engine.Submit(transfer).get();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.call_status, EvmStatus::kSuccess);
  EXPECT_GE(response.writes_discarded, 2u);  // Both balance slots, sandboxed.

  QueryRequest probe;
  probe.kind = QueryKind::kGetStorageAt;
  probe.account = token;
  probe.slot = Erc20BalanceSlot(from);
  QueryResponse after = engine.Submit(probe).get();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value, before);  // The snapshot never moved.
  engine.Stop();
}

TEST(QueryEngineTest, UnknownRootAndStopAreSurfaced) {
  WorldState base = TinyBase();
  SnapshotRegistry registry(base, FakeRoot(0), 0, 2);
  QueryEngine engine(registry);
  QueryRequest request;
  request.kind = QueryKind::kGetBalance;
  request.account = kAlice;

  request.at_root = FakeRoot(99);  // Never published.
  QueryResponse miss = engine.Submit(request).get();
  EXPECT_EQ(miss.status, QueryStatus::kUnknownRoot);

  request.at_root.reset();
  QueryResponse hit = engine.Submit(request).get();
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value, U256(7));

  QueryStats stats = engine.Stop();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.unknown_root, 1u);
  // Post-stop submissions resolve immediately as rejected.
  QueryResponse late = engine.Submit(request).get();
  EXPECT_EQ(late.status, QueryStatus::kRejected);
  EXPECT_EQ(engine.Stop().rejected, 1u);  // Stop is idempotent; stats final.
}

TEST(QueryEngineTest, BackpressureNeverDropsAccepted) {
  WorldState base = TinyBase();
  SnapshotRegistry registry(base, FakeRoot(0), 0, 2);
  QueryEngineOptions options;
  options.threads = 1;
  options.queue_capacity = 2;  // Saturates instantly; Submit must block, not drop.
  QueryEngine engine(registry, options);
  QueryRequest request;
  request.kind = QueryKind::kGetNonce;
  request.account = kAlice;
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 300; ++i) {
    futures.push_back(engine.Submit(request));
  }
  for (std::future<QueryResponse>& f : futures) {
    QueryResponse response = f.get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value, U256(3));
  }
  EXPECT_EQ(engine.Stop().served, 300u);
}

// --- Chain-backed suites ----------------------------------------------------

struct Stream {
  WorldState genesis;
  std::vector<Block> blocks;
  std::vector<Hash256> oracle_roots;
  // Serial-replay state after each block; index 0 = genesis. The query
  // oracle: a response pinned at oracle_roots[b] must read states[b + 1].
  std::vector<WorldState> states;
};

Stream MakeStream(const WorkloadConfig& config, int blocks) {
  WorkloadGenerator gen(config);
  Stream stream;
  stream.genesis = gen.MakeGenesis();
  stream.states.push_back(stream.genesis);
  WorldState state = stream.genesis;
  SerialExecutor oracle{ExecOptions{}};
  for (int b = 0; b < blocks; ++b) {
    stream.blocks.push_back(gen.MakeBlock());
    oracle.Execute(stream.blocks.back(), state);
    stream.oracle_roots.push_back(state.StateRoot());
    stream.states.push_back(state);
  }
  return stream;
}

// root (hex) -> (block_index, replay state). Covers the seed snapshot too, so
// any response served anywhere in the stream has an oracle.
std::map<std::string, std::pair<uint64_t, const WorldState*>> OracleIndex(const Stream& s) {
  std::map<std::string, std::pair<uint64_t, const WorldState*>> index;
  index[HexEncode(s.genesis.StateRoot())] = {0, &s.states[0]};
  for (size_t b = 0; b < s.oracle_roots.size(); ++b) {
    index[HexEncode(s.oracle_roots[b])] = {b + 1, &s.states[b + 1]};
  }
  return index;
}

// Validates one served response against the serial-replay oracle at its
// pinned root. Returns false (with failures recorded) on mismatch.
void ExpectResponseMatchesReplay(
    const QueryResponse& got, const QueryRequest& request,
    const std::map<std::string, std::pair<uint64_t, const WorldState*>>& oracle,
    const std::string& label) {
  auto it = oracle.find(HexEncode(got.root));
  ASSERT_NE(it, oracle.end()) << label << ": served at a root the oracle never produced";
  const auto& [block_index, state] = it->second;
  ASSERT_EQ(got.block_index, block_index) << label;
  WorldStateReader reader(*state);
  QueryResponse want = EvalQuery(request, reader, block_index, got.root);
  ExpectResponsesIdentical(got, want, label);
}

ChainOptions QueryChainOptions(ExecutorKind kind, int os_threads, bool query_tier,
                               size_t retain) {
  ChainOptions options;
  options.executor = kind;
  options.exec.threads = 8;
  options.exec.os_threads = os_threads;
  options.queue_depth = 3;
  options.query_tier = query_tier;
  options.query_retain = retain;
  return options;
}

// The deterministic BlockReport fields, bit for bit (same list the
// speculation battery pins down); wall-clock fields deliberately absent.
void ExpectDeterministicReportsIdentical(const std::vector<BlockReport>& off,
                                         const std::vector<BlockReport>& on,
                                         const std::string& label) {
  ASSERT_EQ(off.size(), on.size()) << label;
  for (size_t b = 0; b < off.size(); ++b) {
    SCOPED_TRACE(testing::Message() << label << " block " << b);
    EXPECT_EQ(off[b].makespan_ns, on[b].makespan_ns);
    EXPECT_EQ(off[b].conflicts, on[b].conflicts);
    EXPECT_EQ(off[b].redo_success, on[b].redo_success);
    EXPECT_EQ(off[b].redo_fail, on[b].redo_fail);
    EXPECT_EQ(off[b].full_reexecutions, on[b].full_reexecutions);
    EXPECT_EQ(off[b].lock_aborts, on[b].lock_aborts);
    EXPECT_EQ(off[b].redo_entries_reexecuted, on[b].redo_entries_reexecuted);
    EXPECT_EQ(off[b].redo_ns, on[b].redo_ns);
    EXPECT_EQ(off[b].oplog_entries, on[b].oplog_entries);
    EXPECT_EQ(off[b].instructions, on[b].instructions);
    EXPECT_EQ(off[b].prefetch_hits, on[b].prefetch_hits);
    EXPECT_EQ(off[b].prefetch_misses, on[b].prefetch_misses);
    EXPECT_EQ(off[b].prefetch_wasted, on[b].prefetch_wasted);
    EXPECT_EQ(off[b].conflict_keys, on[b].conflict_keys);
    ASSERT_EQ(off[b].receipts.size(), on[b].receipts.size());
    for (size_t i = 0; i < off[b].receipts.size(); ++i) {
      EXPECT_EQ(off[b].receipts[i], on[b].receipts[i]) << "tx " << i;
    }
  }
}

TEST(QueryInertnessTest, HammeredTierIsBitInvisible) {
  Stream stream = MakeStream(QueryTestConfig(11), 6);
  WorkloadGenerator gen(QueryTestConfig(11));
  auto oracle = OracleIndex(stream);
  std::vector<TimedQuery> load = gen.MakeQueryLoad(600, QueryWorkloadConfig{});

  for (ExecutorKind kind : {ExecutorKind::kSerial, ExecutorKind::kParallelEvm}) {
    std::string label(ExecutorKindName(kind));
    SCOPED_TRACE(label);

    // Baseline: tier off entirely.
    ChainReport off;
    {
      ChainRunner runner(QueryChainOptions(kind, 4, /*query_tier=*/false, 8), stream.genesis);
      EXPECT_EQ(runner.snapshots(), nullptr);
      for (const Block& block : stream.blocks) {
        ASSERT_TRUE(runner.Submit(block));
      }
      off = runner.Finish();
    }

    // Tier on, four serving threads hammering while blocks flow.
    ChainReport on;
    std::vector<QueryResponse> responses(load.size());
    std::vector<QueryRequest> requests(load.size());
    {
      ChainRunner runner(QueryChainOptions(kind, 4, /*query_tier=*/true, 8), stream.genesis);
      ASSERT_NE(runner.snapshots(), nullptr);
      QueryEngineOptions qopt;
      qopt.threads = 4;
      QueryEngine engine(*runner.snapshots(), qopt);
      std::vector<std::future<QueryResponse>> futures(load.size());
      std::thread hammer([&] {
        for (size_t i = 0; i < load.size(); ++i) {
          requests[i] = load[i].request;
          futures[i] = engine.Submit(load[i].request);
        }
      });
      for (const Block& block : stream.blocks) {
        ASSERT_TRUE(runner.Submit(block));
      }
      on = runner.Finish();
      hammer.join();
      for (size_t i = 0; i < futures.size(); ++i) {
        responses[i] = futures[i].get();
      }
      QueryStats stats = engine.Stop();
      EXPECT_EQ(stats.served, load.size());  // Latest-root queries never miss.
      EXPECT_GT(on.query_snapshots.published, stream.blocks.size());
    }

    // Inertness: roots, final root, and every deterministic report field.
    ASSERT_EQ(off.roots.size(), stream.oracle_roots.size());
    ASSERT_EQ(on.roots.size(), stream.oracle_roots.size());
    for (size_t b = 0; b < stream.oracle_roots.size(); ++b) {
      ASSERT_EQ(HexEncode(on.roots[b]), HexEncode(stream.oracle_roots[b])) << "block " << b;
      ASSERT_EQ(HexEncode(off.roots[b]), HexEncode(on.roots[b])) << "block " << b;
    }
    EXPECT_EQ(HexEncode(off.final_root), HexEncode(on.final_root));
    ExpectDeterministicReportsIdentical(off.block_reports, on.block_reports, label);

    // Exactness: every mid-pipeline response matches the serial replay at
    // whatever root it was served.
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok()) << "query " << i;
      ExpectResponseMatchesReplay(responses[i], requests[i], oracle,
                                  label + " query " + std::to_string(i));
    }
  }
}

TEST(QueryInertnessTest, AbortMidQueryResolvesEverythingConsistently) {
  Stream stream = MakeStream(QueryTestConfig(13), 8);
  WorkloadGenerator gen(QueryTestConfig(13));
  auto oracle = OracleIndex(stream);
  std::vector<TimedQuery> load = gen.MakeQueryLoad(400, QueryWorkloadConfig{});

  ChainRunner runner(QueryChainOptions(ExecutorKind::kParallelEvm, 4, true, 8),
                     stream.genesis);
  QueryEngineOptions qopt;
  qopt.threads = 4;
  QueryEngine engine(*runner.snapshots(), qopt);
  std::vector<std::future<QueryResponse>> futures;
  std::thread producer([&] {
    for (const Block& block : stream.blocks) {
      if (!runner.Submit(block)) {
        break;
      }
    }
  });
  for (const TimedQuery& timed : load) {
    futures.push_back(engine.Submit(timed.request));
  }
  ChainReport report = runner.Abort();  // Pull the plug with queries in flight.
  producer.join();
  engine.Stop();

  EXPECT_TRUE(report.aborted);
  // The committed prefix is an oracle prefix...
  ASSERT_LE(report.roots.size(), stream.oracle_roots.size());
  for (size_t b = 0; b < report.roots.size(); ++b) {
    ASSERT_EQ(HexEncode(report.roots[b]), HexEncode(stream.oracle_roots[b])) << "block " << b;
  }
  // ...and every future resolved; each served response is replay-exact at its
  // root (all served roots are prefix roots, which OracleIndex covers).
  for (size_t i = 0; i < futures.size(); ++i) {
    QueryResponse response = futures[i].get();
    ASSERT_NE(response.status, QueryStatus::kUnknownRoot) << "query " << i;
    if (response.ok()) {
      ExpectResponseMatchesReplay(response, load[i].request, oracle,
                                  "aborted query " + std::to_string(i));
    }
  }
}

// --- QueryOracleTest: randomized battery ------------------------------------

struct QueryScenario {
  WorkloadConfig config;
  int blocks = 3;
  ExecutorKind kind = ExecutorKind::kParallelEvm;
  int os_threads = 4;
  int serve_threads = 2;
  int queries = 120;
  QueryWorkloadConfig query;
};

constexpr ExecutorKind kAllExecutors[] = {
    ExecutorKind::kSerial,   ExecutorKind::kTwoPhaseLocking, ExecutorKind::kOcc,
    ExecutorKind::kBlockStm, ExecutorKind::kParallelEvm,
};

// Shape depends only on the absolute seed: any failing scenario reproduces
// standalone via --seed=<seed> --blocks=1.
QueryScenario MakeQueryScenario(uint64_t seed) {
  QueryScenario scenario;
  WorkloadConfig& config = scenario.config;
  config.seed = seed;
  int s = static_cast<int>(seed % 1'000);
  config.transactions_per_block = 16 + (s % 3) * 16;  // 16 / 32 / 48
  config.users = 80 + (s % 4) * 60;                   // 80 .. 260
  config.tokens = 2 + s % 4;
  config.pools = 1 + s % 3;
  config.funds = 1 + s % 2;
  scenario.blocks = 2 + s % 3;  // 2 .. 4
  scenario.kind = kAllExecutors[s % std::size(kAllExecutors)];
  scenario.os_threads = std::vector<int>{1, 4, 16}[s % 3];
  scenario.serve_threads = 1 + s % 4;
  scenario.query.seed = seed * 31 + 7;
  scenario.query.contract_zipf_s = 0.8 + 0.2 * (s % 3);
  if (s % 4 == 0) {
    scenario.query.burst = 16;  // Bursty arrivals (offsets used by the bench;
    scenario.query.burst_gap_ns = 1'000;  // here they just shape the stream).
  }
  return scenario;
}

TEST(QueryOracleTest, ServedResponsesMatchSerialReplayAcrossRandomChains) {
  std::set<std::pair<ExecutorKind, int>> coverage;
  uint64_t total_served = 0;
  for (int n = 0; n < g_blocks; ++n) {
    uint64_t seed = g_seed + static_cast<uint64_t>(n);
    SCOPED_TRACE(testing::Message() << "scenario seed " << seed << " (repro: ./tests/"
                                    << "query_test --seed=" << seed << " --blocks=1)");
    QueryScenario scenario = MakeQueryScenario(seed);
    coverage.emplace(scenario.kind, scenario.os_threads);
    Stream stream = MakeStream(scenario.config, scenario.blocks);
    WorkloadGenerator gen(scenario.config);
    auto oracle = OracleIndex(stream);
    std::vector<TimedQuery> load = gen.MakeQueryLoad(scenario.queries, scenario.query);

    // retain covers the whole stream so every root stays acquirable for the
    // post-run pinned sweep.
    size_t retain = static_cast<size_t>(scenario.blocks) + 1;
    ChainRunner runner(QueryChainOptions(scenario.kind, scenario.os_threads, true, retain),
                      stream.genesis);
    QueryEngineOptions qopt;
    qopt.threads = scenario.serve_threads;
    QueryEngine engine(*runner.snapshots(), qopt);

    // Hammer mid-pipeline at the latest root.
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(load.size());
    std::thread hammer([&] {
      for (const TimedQuery& timed : load) {
        futures.push_back(engine.Submit(timed.request));
      }
    });
    for (const Block& block : stream.blocks) {
      ASSERT_TRUE(runner.Submit(block));
    }
    ChainReport report = runner.Finish();
    hammer.join();

    ASSERT_EQ(report.roots.size(), stream.oracle_roots.size());
    for (size_t b = 0; b < stream.oracle_roots.size(); ++b) {
      ASSERT_EQ(HexEncode(report.roots[b]), HexEncode(stream.oracle_roots[b]))
          << "block " << b;
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      QueryResponse response = futures[i].get();
      ASSERT_TRUE(response.ok()) << "mid-run query " << i;
      ExpectResponseMatchesReplay(response, load[i].request, oracle,
                                  "mid-run query " + std::to_string(i));
      ++total_served;
    }

    // Post-run pinned sweep: every root in the stream answers AcquireAt and
    // reads exactly like the serial replay stopped there.
    for (size_t b = 0; b < stream.oracle_roots.size(); ++b) {
      QueryRequest pinned = load[b % load.size()].request;
      pinned.at_root = stream.oracle_roots[b];
      QueryResponse response = engine.Submit(pinned).get();
      ASSERT_TRUE(response.ok()) << "pinned query at block " << b + 1;
      EXPECT_EQ(response.block_index, b + 1);
      ExpectResponseMatchesReplay(response, pinned, oracle,
                                  "pinned query at block " + std::to_string(b + 1));
    }
    engine.Stop();
  }

  // Vacuity guards, full default battery only.
  if (g_seed == kDefaultSeed && g_blocks == kDefaultBlocks) {
    EXPECT_GT(total_served, 1'000u);
    EXPECT_GE(coverage.size(), 8u);  // Executor x thread-count spread.
  }
}

}  // namespace
}  // namespace pevm

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      pevm::g_seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--blocks=", 0) == 0) {
      pevm::g_blocks = std::stoi(arg.substr(9));
    } else {
      std::fprintf(stderr, "unknown flag: %s (supported: --seed=N --blocks=M)\n", arg.c_str());
      return 2;
    }
  }
  return RUN_ALL_TESTS();
}
