// Differential fuzz battery: randomized blocks (native transfers, ERC-20 /
// AMM / crowdfund contract calls, conflicting-storage-write blocks) executed
// by every concurrency-control algorithm at several OS-thread counts, with
// the async storage prefetcher on and off, must reproduce the serial
// executor's state root and per-transaction receipt outcomes bit for bit.
// Block-STM motivates exactly this oracle check (arXiv:2203.06871 §6); the
// prefetch axis guards the SimStore determinism contract under fuzzing.
//
// Repro flags (hence the custom main below): a failing scenario prints its
// absolute seed; re-run just that scenario with
//   ./tests/differential_test --seed=<seed> --blocks=1
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/core/parallel_evm.h"
#include "src/workload/block_gen.h"

namespace pevm {

// Flag-overridable battery shape: scenarios use absolute seeds
// [g_seed, g_seed + g_blocks). The defaults reproduce the full battery;
// narrowed runs (a one-command repro) skip the coverage vacuity checks.
// Set from main(), below the anonymous namespace, hence external linkage.
constexpr uint64_t kDefaultSeed = 77'000;
constexpr int kDefaultBlocks = 200;
uint64_t g_seed = kDefaultSeed;
int g_blocks = kDefaultBlocks;

namespace {

struct Scenario {
  WorkloadConfig config;
  // When set, the block is a MakeErc20ConflictBlock hot-spot block instead of
  // the mainnet-like mix.
  bool conflict_block = false;
  double conflict_ratio = 0.0;
  int conflict_txs = 0;
};

// Derives a randomized scenario from its absolute seed: population sizes,
// transaction mix, failure rate and contention all rotate so the battery
// covers clean blocks, abort-heavy blocks and single-hot-key pile-ups. The
// shape depends only on the seed (not on the battery's loop index), so any
// scenario reproduces standalone via --seed.
Scenario MakeScenario(uint64_t seed) {
  Scenario scenario;
  WorkloadConfig& config = scenario.config;
  config.seed = seed;
  // With the default base seed the rotations walk 0..199 exactly as the
  // battery always did (77'000 % 1'000 == 0).
  int s = static_cast<int>(seed % 1'000);
  config.transactions_per_block = 16 + (s % 4) * 12;
  config.users = 90 + (s % 7) * 40;
  config.tokens = 2 + s % 5;
  config.pools = 1 + s % 3;
  config.funds = 1 + s % 2;

  double erc20 = 0.15 + 0.08 * (s % 5);       // 0.15 .. 0.47
  double erc20_from = 0.05 + 0.03 * (s % 4);  // 0.05 .. 0.14
  double amm = 0.10 + 0.07 * (s % 3);         // 0.10 .. 0.24
  double crowdfund = (s % 6 == 0) ? 0.15 : 0.05;
  config.erc20_transfer_frac = erc20;
  config.erc20_transfer_from_frac = erc20_from;
  config.amm_swap_frac = amm;
  config.crowdfund_frac = crowdfund;
  config.failing_tx_frac = (s % 10 == 3) ? 0.25 : 0.02;

  if (s % 5 == 4) {
    scenario.conflict_block = true;
    scenario.conflict_ratio = 0.5 * (s % 3);  // 0.0, 0.5, 1.0
    scenario.conflict_txs = 24 + (s % 3) * 16;
  }
  return scenario;
}

// Receipt outcomes that must match the serial oracle exactly. (Receipt::stats
// may legitimately differ between a speculated-then-redone transaction and
// its serial execution; validity, status, gas and fee may not.)
void ExpectReceiptsMatch(const std::vector<Receipt>& oracle, const std::vector<Receipt>& got,
                         const std::string& label) {
  ASSERT_EQ(oracle.size(), got.size()) << label;
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(oracle[i].valid, got[i].valid) << label << " tx " << i;
    EXPECT_EQ(oracle[i].status, got[i].status) << label << " tx " << i;
    EXPECT_EQ(oracle[i].gas_used, got[i].gas_used) << label << " tx " << i;
    EXPECT_EQ(oracle[i].fee, got[i].fee) << label << " tx " << i;
  }
}

TEST(DifferentialTest, ExecutorsMatchSerialOracleOnRandomBlocks) {
  int conflict_blocks_seen = 0;
  int blocks_with_conflicts = 0;

  for (int b = 0; b < g_blocks; ++b) {
    uint64_t seed = g_seed + static_cast<uint64_t>(b);
    SCOPED_TRACE(testing::Message() << "scenario seed " << seed << " (repro: ./tests/"
                                    << "differential_test --seed=" << seed << " --blocks=1)");
    Scenario scenario = MakeScenario(seed);
    WorkloadGenerator gen(scenario.config);
    WorldState genesis = gen.MakeGenesis();
    Block block = scenario.conflict_block
                      ? gen.MakeErc20ConflictBlock(scenario.conflict_txs,
                                                   scenario.conflict_ratio)
                      : gen.MakeBlock();
    conflict_blocks_seen += scenario.conflict_block ? 1 : 0;

    ExecOptions oracle_options;
    oracle_options.threads = 8;
    WorldState oracle_state = genesis;
    BlockReport oracle = SerialExecutor(oracle_options).Execute(block, oracle_state);

    for (int os_threads : {1, 4, 16}) {
      for (int prefetch_depth : {0, 3}) {
        ExecOptions options = oracle_options;
        options.os_threads = os_threads;
        options.prefetch_depth = prefetch_depth;
        SCOPED_TRACE(testing::Message()
                     << "os_threads=" << os_threads << " prefetch_depth=" << prefetch_depth);

        std::vector<std::unique_ptr<Executor>> executors;
        executors.push_back(std::make_unique<SerialExecutor>(options));
        executors.push_back(std::make_unique<OccExecutor>(options));
        executors.push_back(std::make_unique<BlockStmExecutor>(options));
        executors.push_back(std::make_unique<ParallelEvmExecutor>(options));
        for (std::unique_ptr<Executor>& executor : executors) {
          std::string label = std::string(executor->name());
          WorldState state = genesis;
          BlockReport report = executor->Execute(block, state);
          // Structural equality is the per-run check (equal states have equal
          // roots by construction; rebuilding the trie 4800 times would
          // dominate the suite). The trie path itself is exercised below.
          ASSERT_EQ(state, oracle_state) << label << ": post-state diverged from serial";
          ExpectReceiptsMatch(oracle.receipts, report.receipts, label);
          if (executor->name() == "parallelevm" && os_threads == 1 && prefetch_depth == 0 &&
              report.conflicts > 0) {
            ++blocks_with_conflicts;
          }
        }
      }
    }

    // Rotating root spot-check: every 25th scenario also compares the actual
    // Merkle roots of the oracle against a prefetch-enabled parallel run, so
    // the trie encoding itself stays under differential test.
    if (b % 25 == 0) {
      ExecOptions options = oracle_options;
      options.os_threads = 16;
      options.prefetch_depth = 3;
      WorldState state = genesis;
      ParallelEvmExecutor(options).Execute(block, state);
      ASSERT_EQ(HexEncode(oracle_state.StateRoot()), HexEncode(state.StateRoot()));
    }
  }
  // The battery is vacuous if the randomized blocks never exercise the
  // conflict/redo machinery. Only meaningful for the full default battery —
  // a --seed/--blocks repro run is intentionally narrow.
  if (g_seed == kDefaultSeed && g_blocks == kDefaultBlocks) {
    EXPECT_GT(conflict_blocks_seen, 20);
    EXPECT_GT(blocks_with_conflicts, 10);
  }
}

}  // namespace
}  // namespace pevm

// Custom main: gtest_main would reject the repro flags.
int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      pevm::g_seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--blocks=", 0) == 0) {
      pevm::g_blocks = std::stoi(arg.substr(9));
    } else {
      std::fprintf(stderr, "unknown flag: %s (supported: --seed=N --blocks=M)\n", arg.c_str());
      return 2;
    }
  }
  return RUN_ALL_TESTS();
}
