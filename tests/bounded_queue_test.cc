// Direct coverage for the pipeline's backpressure channel
// (src/chain/bounded_queue.h). Until now the queue was exercised only through
// the chain runner; the query tier reuses it as the serving queue, so its
// contract gets its own suite: FIFO order, capacity-bounded blocking push,
// Close() drains while Abort() drops, both unblock waiting producers and
// consumers, and the MPMC race driver loses nothing under TSan
// (scripts/check_tsan.sh runs BoundedQueueTest explicitly).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "src/chain/bounded_queue.h"

namespace pevm {
namespace {

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  EXPECT_EQ(queue.depth(), 8u);
  for (int i = 0; i < 8; ++i) {
    std::optional<int> item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.max_depth(), 8u);
}

TEST(BoundedQueueTest, CapacityClampsToOne) {
  BoundedQueue<int> queue(0);  // Degenerate capacity still admits one item.
  EXPECT_TRUE(queue.Push(1));
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPop) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(0));
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // Blocks: queue is full.
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());  // Still blocked on backpressure.
  EXPECT_EQ(queue.Pop(), 0);          // Frees one slot.
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  // The high-water mark never exceeded capacity, blocked producer included.
  EXPECT_LE(queue.max_depth(), 2u);
}

TEST(BoundedQueueTest, PopBlocksOnEmptyUntilPush) {
  BoundedQueue<int> queue(4);
  std::optional<int> got;
  std::thread consumer([&] { got = queue.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(queue.Push(7));
  consumer.join();
  EXPECT_EQ(got, 7);
}

TEST(BoundedQueueTest, CloseDrainsQueuedItems) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // No pushes after close...
  EXPECT_EQ(queue.Pop(), 1);    // ...but queued items drain in order...
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // ...then pops report closed.
}

TEST(BoundedQueueTest, AbortDropsQueuedItems) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Abort();
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // Dropped, not drained.
  EXPECT_FALSE(queue.Push(3));
}

TEST(BoundedQueueTest, CloseUnblocksWaitingProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.Push(0));
  bool push_result = true;
  std::thread producer([&] { push_result = full.Push(1); });  // Blocks: full.

  BoundedQueue<int> empty(1);
  std::optional<int> pop_result = 0;
  std::thread consumer([&] { pop_result = empty.Pop(); });  // Blocks: empty.

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  full.Close();
  empty.Close();
  producer.join();
  consumer.join();
  EXPECT_FALSE(push_result);             // The blocked push was refused.
  EXPECT_EQ(pop_result, std::nullopt);   // The blocked pop saw the close.
  EXPECT_EQ(full.Pop(), 0);              // Close still drains.
}

TEST(BoundedQueueTest, AbortUnblocksWaitingProducerAndConsumer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(0));
  bool push_result = true;
  std::optional<int> pop_result;
  std::thread producer([&] { push_result = queue.Push(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Abort();
  producer.join();
  EXPECT_FALSE(push_result);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // Abort dropped item 0 too.
}

// MPMC race driver: P producers push disjoint value ranges through a
// deliberately tiny queue (constant backpressure) while C consumers drain.
// Every pushed value must come out exactly once. This is the test TSan runs
// against the queue's locking.
TEST(BoundedQueueTest, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2'000;
  BoundedQueue<int> queue(3);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::vector<int>> taken(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (std::optional<int> item = queue.Pop()) {
        taken[c].push_back(*item);
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  queue.Close();
  for (std::thread& t : consumers) {
    t.join();
  }

  std::vector<int> all;
  for (const std::vector<int>& part : taken) {
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(all[static_cast<size_t>(i)], i);  // Exactly once each.
  }
  // Per-producer FIFO survives MPMC interleaving: each producer's values
  // appear in increasing order within any single consumer's sequence.
  for (const std::vector<int>& part : taken) {
    std::vector<int> last(kProducers, -1);
    for (int value : part) {
      int p = value / kPerProducer;
      EXPECT_LT(last[p], value);
      last[p] = value;
    }
  }
  EXPECT_LE(queue.max_depth(), 3u);
}

}  // namespace
}  // namespace pevm
