// Opcode-level semantics: each EVM instruction executed in bytecode must
// agree with the pure evaluator and the yellow-paper rules (operand order,
// zero-padding, gas, static restrictions, depth limits).
#include <gtest/gtest.h>

#include <random>

#include "src/evm/eval.h"
#include "src/evm/host.h"
#include "src/evm/interpreter.h"
#include "src/workload/assembler.h"

namespace pevm {
namespace {

const Address kSelf = Address::FromId(0xC0DE);
const Address kCaller = Address::FromId(0xCA11);

class OpcodeRunner {
 public:
  OpcodeRunner() : view_(world_) {}

  EvmResult Run(const Bytes& code, int64_t gas = 5'000'000) {
    world_.SetCode(kSelf, code);
    view_.emplace(world_);
    StateViewHost host(*view_);
    Interpreter interp(host, block_, tx_);
    Message msg;
    msg.code_address = kSelf;
    msg.storage_address = kSelf;
    msg.caller = kCaller;
    msg.gas = gas;
    return interp.Execute(msg);
  }

  WorldState world_;
  std::optional<StateView> view_;
  BlockContext block_;
  TxContext tx_{kCaller, U256(1)};
};

// Runs `op` on the given stack operands via real bytecode and returns the
// result word. Operands pushed so that operands[0] ends on top.
U256 RunBinary(Opcode op, const U256& top, const U256& second) {
  OpcodeRunner runner;
  Assembler a;
  a.Push(second).Push(top).Op(op);
  a.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
  EvmResult r = runner.Run(a.Build());
  EXPECT_EQ(r.status, EvmStatus::kSuccess);
  return U256::FromBigEndian(r.output);
}

// Interpreter output must equal EvalPure for every binary pure op over a
// randomized operand sweep — the redo phase depends on this agreement.
class PureOpAgreementTest : public ::testing::TestWithParam<Opcode> {};

TEST_P(PureOpAgreementTest, BytecodeMatchesEvalPure) {
  Opcode op = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(op) * 7919);
  for (int i = 0; i < 12; ++i) {
    // Mix small values, powers of two, and full-width randoms.
    auto gen = [&]() {
      switch (rng() % 4) {
        case 0:
          return U256(rng() % 1000);
        case 1:
          return U256::Shl(static_cast<unsigned>(rng() % 256), U256(1));
        case 2:
          return ~U256{} - U256(rng() % 5);
        default:
          return U256(rng(), rng(), rng(), rng());
      }
    };
    U256 top = gen();
    U256 second = gen();
    std::array<U256, 2> ops = {top, second};
    ASSERT_EQ(RunBinary(op, top, second), EvalPure(op, ops))
        << OpcodeName(op) << "(" << top.ToHexString() << ", " << second.ToHexString() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Binary, PureOpAgreementTest,
    ::testing::Values(Opcode::kAdd, Opcode::kMul, Opcode::kSub, Opcode::kDiv, Opcode::kSdiv,
                      Opcode::kMod, Opcode::kSmod, Opcode::kExp, Opcode::kSignextend, Opcode::kLt,
                      Opcode::kGt, Opcode::kSlt, Opcode::kSgt, Opcode::kEq, Opcode::kAnd,
                      Opcode::kOr, Opcode::kXor, Opcode::kByte, Opcode::kShl, Opcode::kShr,
                      Opcode::kSar),
    [](const ::testing::TestParamInfo<Opcode>& info) {
      return std::string(OpcodeName(info.param));
    });

TEST(OpcodeTest, TernaryOps) {
  OpcodeRunner runner;
  Assembler a;
  // ADDMOD(9, 5, 7): push n, b, a (a on top).
  a.Push(7).Push(5).Push(9).Op(Opcode::kAddmod);
  a.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
  EvmResult r = runner.Run(a.Build());
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  EXPECT_EQ(U256::FromBigEndian(r.output), U256(0));  // 14 mod 7.
}

TEST(OpcodeTest, IsZeroAndNot) {
  EXPECT_EQ(RunBinary(Opcode::kSub, U256(5), U256(5)), U256{});
  OpcodeRunner runner;
  Assembler a;
  a.Push(0).Op(Opcode::kIszero);
  a.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
  EvmResult r = runner.Run(a.Build());
  EXPECT_EQ(U256::FromBigEndian(r.output), U256(1));
}

TEST(OpcodeTest, ImplicitStopAtCodeEnd) {
  OpcodeRunner runner;
  Assembler a;
  a.Push(1).Push(2).Op(Opcode::kAdd);  // No explicit STOP.
  EvmResult r = runner.Run(a.Build());
  EXPECT_EQ(r.status, EvmStatus::kSuccess);
  EXPECT_TRUE(r.output.empty());
}

TEST(OpcodeTest, PushTruncatedAtCodeEnd) {
  // PUSH32 with only 2 immediate bytes present: zero-padded per spec.
  OpcodeRunner runner;
  Bytes code = {0x7f, 0xaa, 0xbb};  // PUSH32 0xaabb (29 bytes missing).
  EvmResult r = runner.Run(code);
  EXPECT_EQ(r.status, EvmStatus::kSuccess);  // Implicit stop after push.
}

TEST(OpcodeTest, GasAccountingForArithmetic) {
  OpcodeRunner runner;
  Assembler a;
  a.Push(1).Push(2).Op(Opcode::kAdd).Op(Opcode::kPop).Op(Opcode::kStop);
  EvmResult r = runner.Run(a.Build(), 100'000);
  // PUSH(3)+PUSH(3)+ADD(3)+POP(2)+STOP(0) = 11.
  EXPECT_EQ(100'000 - r.gas_left, 11);
}

TEST(OpcodeTest, ExpGasScalesWithExponentWidth) {
  auto gas_for = [&](const U256& exponent) {
    OpcodeRunner runner;
    Assembler a;
    a.Push(exponent).Push(3).Op(Opcode::kExp).Op(Opcode::kPop).Op(Opcode::kStop);
    EvmResult r = runner.Run(a.Build(), 100'000);
    return 100'000 - r.gas_left;
  };
  int64_t one_byte = gas_for(U256(0xff));
  int64_t two_bytes = gas_for(U256(0x100));
  int64_t full = gas_for(~U256{});
  EXPECT_EQ(two_bytes - one_byte, 50);
  EXPECT_EQ(full - one_byte, 50 * 31);
}

TEST(OpcodeTest, MemoryExpansionGasQuadratic) {
  auto gas_for = [&](uint64_t offset) {
    OpcodeRunner runner;
    Assembler a;
    a.Push(1).Push(offset).Op(Opcode::kMstore).Op(Opcode::kStop);
    EvmResult r = runner.Run(a.Build(), 10'000'000);
    return 10'000'000 - r.gas_left;
  };
  // cost(words) = 3*words + words^2/512: one word costs 3, 32 words cost
  // 96 + 2, 1024 words cost 3072 + 2048.
  int64_t base = gas_for(0) - 3;  // Strip the push/mstore static cost once.
  EXPECT_EQ(gas_for(0), base + 3);
  EXPECT_EQ(gas_for(31 * 32), base + 3 * 32 + (32 * 32) / 512);
  EXPECT_EQ(gas_for(1023 * 32), base + 3 * 1024 + (1024 * 1024) / 512);
}

TEST(OpcodeTest, CopyOpsChargePerWord) {
  auto gas_for = [&](uint64_t len) {
    OpcodeRunner runner;
    Assembler a;
    a.Push(len).Push(0).Push(0).Op(Opcode::kCalldatacopy).Op(Opcode::kStop);
    EvmResult r = runner.Run(a.Build(), 10'000'000);
    return 10'000'000 - r.gas_left;
  };
  EXPECT_EQ(gas_for(64) - gas_for(32), 3 + 3);  // +1 copy word, +1 memory word.
}

TEST(OpcodeTest, LogChargesTopicsAndData) {
  OpcodeRunner runner;
  Assembler a;
  a.Push(7).Push(9);                       // Two topics.
  a.Push(32).Push(0).Op(Opcode::kLog2);    // 32 bytes of data.
  a.Op(Opcode::kStop);
  EvmResult r = runner.Run(a.Build(), 100'000);
  int64_t used = 100'000 - r.gas_left;
  // 4 pushes (12) + LOG base 375 + 2*375 + 8*32 + memory word 3.
  EXPECT_EQ(used, 12 + 375 + 750 + 256 + 3);
}

TEST(OpcodeTest, CallDepthLimitReturnsZero) {
  // A contract that calls itself recursively; at depth 1024 the inner call
  // fails (push 0) and the chain unwinds successfully.
  OpcodeRunner runner;
  Assembler a;
  a.Push(0).Push(0).Push(0).Push(0).Push(0);
  a.Push(kSelf).Op(Opcode::kGas).Op(Opcode::kCall);
  a.Push(0).Op(Opcode::kMstore);
  a.Push(0x20).Push(0).Op(Opcode::kReturn);
  EvmResult r = runner.Run(a.Build(), 30'000'000);
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  // The outermost call returns its child's success flag; somewhere down the
  // chain a call returned 0 (depth or gas exhaustion) without poisoning us.
  EXPECT_EQ(r.output.size(), 32u);
}

TEST(OpcodeTest, StaticcallBlocksNestedWriteThroughCall) {
  // STATICCALL -> callee does a plain CALL -> grand-callee SSTOREs.
  // The static flag must propagate and halt the grand-callee.
  OpcodeRunner runner;
  Address mid = Address::FromId(0x1111);
  Address leaf = Address::FromId(0x2222);
  Assembler leaf_asm;
  leaf_asm.Push(1).Push(1).Op(Opcode::kSstore).Op(Opcode::kStop);
  runner.world_.SetCode(leaf, leaf_asm.Build());
  Assembler mid_asm;
  mid_asm.Push(0).Push(0).Push(0).Push(0).Push(0).Push(leaf).Op(Opcode::kGas);
  mid_asm.Op(Opcode::kCall);  // Inherits static mode.
  mid_asm.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
  runner.world_.SetCode(mid, mid_asm.Build());
  Assembler top;
  top.Push(0x20).Push(0).Push(0).Push(0).Push(mid).Op(Opcode::kGas);
  top.Op(Opcode::kStaticcall).Op(Opcode::kPop);
  top.Push(0).Op(Opcode::kMload);
  top.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
  EvmResult r = runner.Run(top.Build());
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  // mid returned its CALL's success flag: 0 (leaf halted on SSTORE).
  EXPECT_EQ(U256::FromBigEndian(r.output), U256{});
  EXPECT_EQ(runner.view_->GetStorage(leaf, U256(1)), U256{});
}

TEST(OpcodeTest, SixtyThreeSixtyFourthsGasForwarding) {
  // The callee burns everything it gets; the caller keeps 1/64.
  OpcodeRunner runner;
  Address burner = Address::FromId(0x3333);
  Assembler burn;
  burn.Label("loop").Jump("loop");
  runner.world_.SetCode(burner, burn.Build());
  Assembler a;
  a.Push(0).Push(0).Push(0).Push(0).Push(0).Push(burner).Op(Opcode::kGas);
  a.Op(Opcode::kCall);
  a.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
  EvmResult r = runner.Run(a.Build(), 640'000);
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  EXPECT_EQ(U256::FromBigEndian(r.output), U256{});  // Callee ran out of gas.
  EXPECT_GT(r.gas_left, 0);                          // But the caller survived.
}

TEST(OpcodeTest, ExtcodesizeAndHash) {
  OpcodeRunner runner;
  Address other = Address::FromId(0x4444);
  runner.world_.SetCode(other, Bytes{0x60, 0x00, 0x00});
  Assembler a;
  a.Push(other).Op(Opcode::kExtcodesize);
  a.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
  EvmResult r = runner.Run(a.Build());
  EXPECT_EQ(U256::FromBigEndian(r.output), U256(3));

  Assembler b;
  b.Push(Address::FromId(0x5555)).Op(Opcode::kExtcodehash);  // No code: 0.
  b.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
  EvmResult r2 = runner.Run(b.Build());
  EXPECT_EQ(U256::FromBigEndian(r2.output), U256{});
}

TEST(OpcodeTest, ChainConstantOpcodes) {
  OpcodeRunner runner;
  runner.block_.chain_id = U256(1);
  runner.block_.number = U256(14'000'000);
  Assembler a;
  a.Op(Opcode::kChainid).Op(Opcode::kNumber).Op(Opcode::kAdd);
  a.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
  EvmResult r = runner.Run(a.Build());
  EXPECT_EQ(U256::FromBigEndian(r.output), U256(14'000'001));
}

TEST(OpcodeTest, MsizeTracksExpansion) {
  OpcodeRunner runner;
  Assembler a;
  a.Push(1).Push(100).Op(Opcode::kMstore);  // Expands to 132 -> 160 bytes.
  a.Op(Opcode::kMsize);
  a.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
  EvmResult r = runner.Run(a.Build());
  EXPECT_EQ(U256::FromBigEndian(r.output), U256(160));
}

TEST(OpcodeTest, TraitsTableSanity) {
  // Every defined opcode's pops/pushes must be within stack effects bounds.
  int defined = 0;
  for (int i = 0; i < 256; ++i) {
    const OpcodeTraits& t = TraitsOf(static_cast<Opcode>(i));
    if (!t.defined) {
      continue;
    }
    ++defined;
    EXPECT_GE(t.stack_pops, 0);
    EXPECT_LE(t.stack_pops, 17);
    EXPECT_LE(t.stack_pushes, 17);
    EXPECT_FALSE(t.name.empty());
  }
  EXPECT_GT(defined, 120);  // Push/dup/swap families included.
}

TEST(OpcodeTest, UndefinedOpcodeHalts) {
  OpcodeRunner runner;
  EvmResult r = runner.Run(Bytes{0x0c});  // 0x0c is undefined.
  EXPECT_EQ(r.status, EvmStatus::kInvalidInstruction);
  EXPECT_EQ(r.gas_left, 0);
}


TEST(OpcodeTest, HugeRequestedCallGasClampsToCap) {
  // Regression: a gas operand like 2^63 fits uint64 but is negative as
  // int64; it must clamp to the 63/64 cap instead of *refunding* gas.
  OpcodeRunner runner;
  Assembler a;
  a.Push(0).Push(0).Push(0).Push(0).Push(0).Push(Address::FromId(0x9999));
  a.Push(U256::Shl(63, U256(1)));  // Requested gas = 2^63.
  a.Op(Opcode::kCall);
  a.Op(Opcode::kPop).Op(Opcode::kStop);
  EvmResult r = runner.Run(a.Build(), 100'000);
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  EXPECT_LT(r.gas_left, 100'000);  // Gas strictly consumed, never created.
  EXPECT_GE(r.gas_left, 0);
}

}  // namespace
}  // namespace pevm
