// Property tests for the simulated storage front-end and its asynchronous
// prefetch pipeline. The load-bearing claim (DESIGN.md): warming is pure
// cache-residency marking — concurrent warm-ups of overlapping key sets can
// never change what any reader observes, and a prefetch-enabled executor run
// is bit-identical (state root, receipts, virtual makespan) to a cold run.
#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/core/parallel_evm.h"
#include "src/exec/pipeline.h"
#include "src/state/sim_store.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

// A small committed state plus the key universe the tests hammer.
struct Fixture {
  WorldState state;
  std::vector<StateKey> keys;
};

Fixture MakeFixture(int accounts, int slots_per_account) {
  Fixture f;
  for (int a = 0; a < accounts; ++a) {
    Address addr = Address::FromId(1000 + a);
    f.state.SetBalance(addr, U256(1'000'000 + a));
    f.state.SetNonce(addr, a);
    f.keys.push_back(StateKey::Balance(addr));
    f.keys.push_back(StateKey::Nonce(addr));
    for (int s = 0; s < slots_per_account; ++s) {
      U256 slot = U256(s);
      f.state.SetStorage(addr, slot, U256(a * 100 + s + 7));
      f.keys.push_back(StateKey::Storage(addr, slot));
    }
  }
  return f;
}

// The core safety property: many threads warming overlapping key sets while
// many other threads read through SimStoreReader — every read must return
// exactly the committed WorldState value, and afterwards the store's contents
// (as observed through a reader) are indistinguishable from a cold store's.
TEST(PrefetchPropertyTest, ConcurrentOverlappingWarmupNeverChangesObservableContents) {
  Fixture f = MakeFixture(/*accounts=*/24, /*slots_per_account=*/6);
  const size_t n = f.keys.size();

  // Expected values from a completely cold store.
  std::vector<U256> expected;
  expected.reserve(n);
  for (const StateKey& key : f.keys) {
    expected.push_back(f.state.Get(key));
  }

  SimStore store;  // Zero latency: the race surface, without the waiting.
  constexpr int kWarmers = 4;
  constexpr int kReaders = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int w = 0; w < kWarmers; ++w) {
    threads.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        // Overlapping windows: warmer w repeatedly re-warms a sliding slice.
        size_t begin = (w * 11 + round * 7) % n;
        size_t len = std::min<size_t>(n - begin, 13 + w);
        store.WarmBatch(std::span<const StateKey>(f.keys.data() + begin, len));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      SimStoreReader reader(store, f.state);
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = r; i < n; i += kReaders) {
          if (reader.Read(f.keys[i]) != expected[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0);

  // Residency bookkeeping stayed coherent: the readers' strides partition the
  // key space, so every Touch is accounted exactly once, and at most one
  // touch per distinct key was cold (warmers may have beaten even that one).
  EXPECT_EQ(store.cold_touches() + store.warm_touches(),
            static_cast<uint64_t>(kRounds) * n);
  EXPECT_LE(store.cold_touches(), n);

  // Post-condition: still indistinguishable from cold contents.
  SimStoreReader reader(store, f.state);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(reader.Read(f.keys[i]), expected[i]) << f.keys[i].ToString();
  }
}

TEST(PrefetchPropertyTest, TouchClassifiesFirstReadColdThenWarm) {
  Fixture f = MakeFixture(2, 2);
  SimStore store;
  const StateKey& key = f.keys.front();
  EXPECT_FALSE(store.IsResident(key));
  EXPECT_FALSE(store.Touch(key));  // Cold on first touch.
  EXPECT_TRUE(store.Touch(key));   // Warm afterwards.
  EXPECT_TRUE(store.IsResident(key));
  EXPECT_EQ(store.cold_touches(), 1u);
  EXPECT_EQ(store.warm_touches(), 1u);

  store.WarmBatch(std::span<const StateKey>(&f.keys[1], 1));
  EXPECT_TRUE(store.IsResident(f.keys[1]));
  EXPECT_TRUE(store.Touch(f.keys[1]));  // Warmed key reads warm.

  store.BeginBlock();  // Residency resets per block; hints survive.
  EXPECT_FALSE(store.IsResident(key));
  EXPECT_FALSE(store.Touch(key));
}

TEST(PrefetchPropertyTest, ConcurrentTouchesCountEachDistinctKeyColdExactlyOnce) {
  Fixture f = MakeFixture(16, 8);
  SimStore store;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (const StateKey& key : f.keys) {
        store.Touch(key);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(store.cold_touches(), f.keys.size());
  EXPECT_EQ(store.cold_touches() + store.warm_touches(), kThreads * f.keys.size());
}

TEST(PrefetchPropertyTest, PredictSetLearnsObservedStorageKeysUpToCap) {
  SimStoreConfig config;
  config.max_hint_keys = 4;
  SimStore store(config);
  PrefetchRequest request;
  request.from = Address::FromId(1);
  request.to = Address::FromId(2);
  request.selector = 0xa9059cbb;
  request.has_selector = true;

  // Before learning: envelope keys only.
  std::vector<StateKey> predicted = store.PredictSet(request);
  EXPECT_EQ(predicted.size(), 3u);  // sender balance + nonce, recipient balance.

  ReadSet reads;
  for (int s = 0; s < 10; ++s) {
    reads.emplace(StateKey::Storage(request.to, U256(s)), U256{});
  }
  reads.emplace(StateKey::Balance(request.from), U256{});  // Not a storage key: no hint.
  store.RecordObserved(request, reads);

  predicted = store.PredictSet(request);
  EXPECT_EQ(predicted.size(), 3u + config.max_hint_keys);  // Capped.

  // A different selector on the same contract has its own bucket.
  PrefetchRequest other = request;
  other.selector = 0x23b872dd;
  EXPECT_EQ(store.PredictSet(other).size(), 3u);
  // Predictions are a pure function of request + hint table: repeat calls agree.
  EXPECT_EQ(store.PredictSet(request), store.PredictSet(request));
}

// The hint table is globally bounded: (contract, selector) buckets beyond
// max_hint_entries are evicted least-recently-*observed* first, so a stream
// rotating through hot contracts sheds the cold hints. Recency is bumped only
// by RecordObserved (the deterministic block-order pass) — PredictSet, which
// races on prefetch drivers, must never save a bucket from eviction.
TEST(PrefetchPropertyTest, HintTableEvictsLeastRecentlyObservedBucket) {
  SimStoreConfig config;
  config.max_hint_entries = 4;
  SimStore store(config);
  constexpr uint32_t kSelector = 0xa9059cbb;
  auto request = [&](uint64_t contract) {
    PrefetchRequest r;
    r.from = Address::FromId(1);
    r.to = Address::FromId(100 + contract);
    r.selector = kSelector;
    r.has_selector = true;
    return r;
  };
  auto observe = [&](uint64_t contract) {
    ReadSet reads;
    reads.emplace(StateKey::Storage(Address::FromId(100 + contract), U256(contract)), U256{});
    store.RecordObserved(request(contract), reads);
  };

  for (uint64_t c = 0; c < 4; ++c) {
    observe(c);
  }
  EXPECT_EQ(store.hint_entries(), 4u);
  observe(0);  // Contract 0 is hot again; 1 is now the coldest.
  EXPECT_EQ(store.hint_entries(), 4u);

  observe(4);  // Over the cap: evicts 1, not the re-observed 0.
  EXPECT_EQ(store.hint_entries(), 4u);
  EXPECT_TRUE(store.HasHintBucket(Address::FromId(100), kSelector));
  EXPECT_FALSE(store.HasHintBucket(Address::FromId(101), kSelector));
  EXPECT_TRUE(store.HasHintBucket(Address::FromId(104), kSelector));

  // An evicted bucket predicts envelope-only again until relearned.
  EXPECT_EQ(store.PredictSet(request(1)).size(), 3u);

  // Contract 2 is now the coldest survivor. Hammering it through PredictSet
  // must not rescue it from the next eviction: prediction is read-only.
  for (int i = 0; i < 16; ++i) {
    store.PredictSet(request(2));
  }
  observe(1);  // Relearn 1 -> over the cap again -> evicts 2.
  EXPECT_FALSE(store.HasHintBucket(Address::FromId(102), kSelector));
  EXPECT_EQ(store.PredictSet(request(1)).size(), 4u);

  // Cap 0 = unbounded.
  SimStore unbounded(SimStoreConfig{.max_hint_entries = 0});
  // (re-declare helpers against the unbounded store)
  for (uint64_t c = 0; c < 64; ++c) {
    ReadSet reads;
    reads.emplace(StateKey::Storage(Address::FromId(100 + c), U256(c)), U256{});
    PrefetchRequest r;
    r.from = Address::FromId(1);
    r.to = Address::FromId(100 + c);
    r.selector = kSelector;
    r.has_selector = true;
    unbounded.RecordObserved(r, reads);
  }
  EXPECT_EQ(unbounded.hint_entries(), 64u);
}

// Eviction pressure must not break the determinism contract: with a cap so
// small that buckets churn constantly, the prefetch hit/miss/wasted counters
// are still a pure function of the block stream — identical at every OS
// thread count and across repeat runs.
TEST(PrefetchPropertyTest, HintCapKeepsCountersOsThreadInvariant) {
  WorkloadConfig config;
  config.seed = 737373;
  config.transactions_per_block = 80;
  config.users = 400;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks;
  for (int b = 0; b < 3; ++b) {
    blocks.push_back(gen.MakeBlock());
  }

  auto run = [&](int os_threads) {
    ExecOptions options;
    options.threads = 8;
    options.os_threads = os_threads;
    options.prefetch_depth = 6;
    options.storage.max_hint_entries = 2;  // Aggressive churn.
    ParallelEvmExecutor pevm(options);
    WorldState state = genesis;
    std::vector<std::array<uint64_t, 3>> counters;
    for (const Block& block : blocks) {
      BlockReport report = pevm.Execute(block, state);
      counters.push_back({report.prefetch_hits, report.prefetch_misses, report.prefetch_wasted});
    }
    return counters;
  };
  auto one = run(1);
  EXPECT_EQ(one, run(4));
  EXPECT_EQ(one, run(16));
}

TEST(PrefetchPropertyTest, EngineWithDepthCoveringBlockWarmsEveryPredictedKey) {
  SimStore store;
  std::vector<PrefetchRequest> requests;
  for (int i = 0; i < 40; ++i) {
    PrefetchRequest r;
    r.from = Address::FromId(100 + i);
    r.to = Address::FromId(200 + i % 5);
    requests.push_back(r);
  }
  size_t predicted_total = 0;
  std::vector<StateKey> all_predicted;
  for (const PrefetchRequest& r : requests) {
    std::vector<StateKey> p = store.PredictSet(r);
    predicted_total += p.size();
    all_predicted.insert(all_predicted.end(), p.begin(), p.end());
  }

  PrefetchEngine engine(store, requests, /*depth=*/static_cast<int>(requests.size()));
  engine.Drain();  // Depth covers the whole block: no pacing needed.
  EXPECT_EQ(engine.keys_issued(), predicted_total);
  EXPECT_GE(engine.batches_issued(), 1u);
  for (const StateKey& key : all_predicted) {
    EXPECT_TRUE(store.IsResident(key)) << key.ToString();
  }
}

TEST(PrefetchPropertyTest, EngineFinishWithoutProgressDoesNotHang) {
  SimStore store;
  std::vector<PrefetchRequest> requests(64);
  PrefetchEngine engine(store, requests, /*depth=*/1);
  engine.Finish();  // Execution never started: abort must not deadlock.
  engine.Finish();  // Idempotent.
  SUCCEED();
}

// Executor-level property: turning the prefetch pipeline on cannot perturb
// the virtual-time oracle or the results — state root, receipts, makespan and
// the StateCache-driven counters are bit-identical to a cold run, while the
// prefetch counters actually engage.
TEST(PrefetchPropertyTest, PrefetchingIsInvisibleToResultsAndVirtualTime) {
  WorkloadConfig config;
  config.seed = 515151;
  config.transactions_per_block = 60;
  config.users = 400;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks;
  for (int b = 0; b < 2; ++b) {
    blocks.push_back(gen.MakeBlock());
  }

  struct Variant {
    const char* name;
    int prefetch_depth;
    uint64_t cold_read_ns;
  };
  // Depth without latency, latency without depth, and both together.
  const Variant variants[] = {{"depth8", 8, 0}, {"latency", 0, 400}, {"both", 8, 400}};

  auto run_all = [&](auto make_executor) {
    ExecOptions cold_options;
    cold_options.threads = 8;
    cold_options.os_threads = 4;
    WorldState cold_state = genesis;
    auto cold_exec = make_executor(cold_options);
    std::vector<BlockReport> cold_reports;
    for (const Block& block : blocks) {
      cold_reports.push_back(cold_exec->Execute(block, cold_state));
    }

    for (const Variant& v : variants) {
      SCOPED_TRACE(v.name);
      ExecOptions options = cold_options;
      options.prefetch_depth = v.prefetch_depth;
      options.storage.cold_read_ns = v.cold_read_ns;
      options.storage.warm_read_ns = v.cold_read_ns / 4;
      WorldState state = genesis;
      auto exec = make_executor(options);
      uint64_t engaged = 0;
      for (size_t b = 0; b < blocks.size(); ++b) {
        BlockReport report = exec->Execute(blocks[b], state);
        const BlockReport& cold = cold_reports[b];
        EXPECT_EQ(report.makespan_ns, cold.makespan_ns) << "block " << b;
        EXPECT_EQ(report.receipts, cold.receipts) << "block " << b;
        EXPECT_EQ(report.conflicts, cold.conflicts) << "block " << b;
        EXPECT_EQ(report.redo_success, cold.redo_success) << "block " << b;
        EXPECT_EQ(report.instructions, cold.instructions) << "block " << b;
        engaged += report.prefetch_hits + report.prefetch_misses;
      }
      EXPECT_EQ(state, cold_state) << "post-state diverged from the cold run";
      if (v.prefetch_depth > 0) {
        EXPECT_GT(engaged, 0u) << "prefetch accounting never engaged";
      }
    }
  };

  run_all([](const ExecOptions& o) { return std::make_unique<SerialExecutor>(o); });
  run_all([](const ExecOptions& o) { return std::make_unique<ParallelEvmExecutor>(o); });
  run_all([](const ExecOptions& o) { return std::make_unique<OccExecutor>(o); });
  run_all([](const ExecOptions& o) { return std::make_unique<BlockStmExecutor>(o); });
}

// The deterministic counter pass: hit/miss/wasted must be a pure function of
// the block and the executor's hint history — identical across repeated runs
// and across OS-thread counts (the determinism suite covers threads; this one
// pins repeatability and the hits ≤ predicted relationship).
TEST(PrefetchPropertyTest, PrefetchCountersAreReproducible) {
  WorkloadConfig config;
  config.seed = 626262;
  config.transactions_per_block = 100;
  config.users = 500;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks;
  for (int b = 0; b < 3; ++b) {
    blocks.push_back(gen.MakeBlock());
  }

  auto run = [&] {
    ExecOptions options;
    options.threads = 8;
    options.os_threads = 4;
    options.prefetch_depth = 6;
    ParallelEvmExecutor pevm(options);
    WorldState state = genesis;
    std::vector<std::array<uint64_t, 3>> counters;
    for (const Block& block : blocks) {
      BlockReport report = pevm.Execute(block, state);
      counters.push_back({report.prefetch_hits, report.prefetch_misses, report.prefetch_wasted});
    }
    return counters;
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second);
  // Hints learned in block 0 must raise block 1+'s hit counts above the
  // envelope-only floor of the very first block.
  EXPECT_GT(first[1][0], 0u);
  EXPECT_GE(first[1][0] + first[2][0], first[0][0]);
}

}  // namespace
}  // namespace pevm
