// Per-executor behavioural tests: edge cases (empty/invalid blocks),
// algorithm-specific mechanics (Block-STM dependency chains, 2PL wounds,
// pre-execution mode), fee crediting, and virtual-time sanity properties.
#include <gtest/gtest.h>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/baselines/two_phase_locking.h"
#include "src/core/parallel_evm.h"
#include "src/workload/contracts.h"

namespace pevm {
namespace {

const Address kToken = Address::FromId(0x70CE);
const Address kCoinbase = Address::FromId(0xC0FFEE);

Transaction NativeTransfer(uint64_t from_id, uint64_t to_id, uint64_t value, uint64_t nonce = 0) {
  Transaction tx;
  tx.from = Address::FromId(from_id);
  tx.to = Address::FromId(to_id);
  tx.value = U256(value);
  tx.gas_limit = 50'000;
  tx.gas_price = U256(2);
  tx.nonce = nonce;
  return tx;
}

WorldState FundedWorld(int users) {
  WorldState state;
  for (int u = 0; u < users; ++u) {
    state.SetBalance(Address::FromId(0x1000 + static_cast<uint64_t>(u)),
                     U256::Exp(U256(10), U256(18)));
  }
  return state;
}

Block MakeBlock(std::vector<Transaction> txs) {
  Block block;
  block.context.coinbase = kCoinbase;
  block.transactions = std::move(txs);
  return block;
}

template <typename T>
class ExecutorTypedTest : public ::testing::Test {
 protected:
  ExecOptions options_;
  T MakeExecutor() {
    options_.threads = 4;
    return T(options_);
  }
};

using ExecutorTypes = ::testing::Types<SerialExecutor, OccExecutor, BlockStmExecutor,
                                       TwoPhaseLockingExecutor, ParallelEvmExecutor>;
TYPED_TEST_SUITE(ExecutorTypedTest, ExecutorTypes);

TYPED_TEST(ExecutorTypedTest, EmptyBlockIsNoOp) {
  TypeParam exec = this->MakeExecutor();
  WorldState state = FundedWorld(2);
  uint64_t digest = state.Digest();
  BlockReport report = exec.Execute(MakeBlock({}), state);
  EXPECT_EQ(state.Digest(), digest);
  EXPECT_TRUE(report.receipts.empty());
}

TYPED_TEST(ExecutorTypedTest, SingleTransferMovesValueAndFee) {
  TypeParam exec = this->MakeExecutor();
  WorldState state = FundedWorld(2);
  BlockReport report = exec.Execute(MakeBlock({NativeTransfer(0x1000, 0x1001, 777)}), state);
  ASSERT_EQ(report.receipts.size(), 1u);
  EXPECT_TRUE(report.receipts[0].valid);
  EXPECT_EQ(state.GetBalance(Address::FromId(0x1001)),
            U256::Exp(U256(10), U256(18)) + U256(777));
  // The coinbase got gas_used * price at block end.
  EXPECT_EQ(state.GetBalance(kCoinbase), U256(21000 * 2));
  EXPECT_EQ(state.GetNonce(Address::FromId(0x1000)), 1u);
}

TYPED_TEST(ExecutorTypedTest, InvalidTransactionsLeaveNoTrace) {
  TypeParam exec = this->MakeExecutor();
  WorldState state = FundedWorld(2);
  uint64_t digest = state.Digest();
  // Wrong nonce and unfunded sender.
  Block block = MakeBlock({NativeTransfer(0x1000, 0x1001, 1, /*nonce=*/9),
                           NativeTransfer(0x9999, 0x1001, 1)});
  BlockReport report = exec.Execute(block, state);
  EXPECT_EQ(state.Digest(), digest);
  EXPECT_FALSE(report.receipts[0].valid);
  EXPECT_FALSE(report.receipts[1].valid);
}

TYPED_TEST(ExecutorTypedTest, SameSenderNonceChainCommitsInOrder) {
  TypeParam exec = this->MakeExecutor();
  WorldState state = FundedWorld(3);
  Block block = MakeBlock({NativeTransfer(0x1000, 0x1001, 10, 0),
                           NativeTransfer(0x1000, 0x1002, 20, 1),
                           NativeTransfer(0x1000, 0x1001, 30, 2)});
  BlockReport report = exec.Execute(block, state);
  for (const Receipt& r : report.receipts) {
    EXPECT_TRUE(r.valid);
  }
  EXPECT_EQ(state.GetNonce(Address::FromId(0x1000)), 3u);
  EXPECT_EQ(state.GetBalance(Address::FromId(0x1001)),
            U256::Exp(U256(10), U256(18)) + U256(40));
}

TYPED_TEST(ExecutorTypedTest, BalanceDependencyChainIsSerializableInBlockOrder) {
  // A -> B -> C -> D payment chain where each hop forwards received funds;
  // correctness requires strict block-order semantics.
  TypeParam exec = this->MakeExecutor();
  WorldState state;
  state.SetBalance(Address::FromId(0x1000), U256::Exp(U256(10), U256(18)));
  state.SetBalance(Address::FromId(0x1001), U256(200'000));  // Just enough for gas.
  state.SetBalance(Address::FromId(0x1002), U256(200'000));
  const uint64_t kPayment = 5'000'000;
  Block block = MakeBlock({NativeTransfer(0x1000, 0x1001, kPayment),
                           NativeTransfer(0x1001, 0x1002, kPayment / 2),
                           NativeTransfer(0x1002, 0x1003, kPayment / 4)});
  BlockReport report = exec.Execute(block, state);
  for (size_t i = 0; i < report.receipts.size(); ++i) {
    EXPECT_TRUE(report.receipts[i].valid) << "tx " << i;
  }
  EXPECT_EQ(state.GetBalance(Address::FromId(0x1003)), U256(kPayment / 4));
}

TEST(ParallelEvmTest, PreExecutionModeMatchesNormalMode) {
  WorldState genesis = FundedWorld(8);
  genesis.SetCode(kToken, BuildErc20Code());
  for (int u = 0; u < 8; ++u) {
    genesis.SetStorage(kToken, Erc20BalanceSlot(Address::FromId(0x1000 + static_cast<uint64_t>(u))),
                       U256(10'000));
  }
  std::vector<Transaction> txs;
  for (int u = 1; u < 8; ++u) {
    Transaction tx;
    tx.from = Address::FromId(0x1000 + static_cast<uint64_t>(u));
    tx.to = kToken;
    tx.data = Erc20TransferCall(Address::FromId(0x1000), U256(5));
    tx.gas_limit = 150'000;
    tx.gas_price = U256(1);
    txs.push_back(tx);
  }
  Block block = MakeBlock(txs);

  ExecOptions options;
  options.threads = 4;
  ParallelEvmExecutor normal(options);
  ParallelEvmExecutor preexec(options, /*pre_execution=*/true);
  WorldState s1 = genesis;
  WorldState s2 = genesis;
  BlockReport r1 = normal.Execute(block, s1);
  BlockReport r2 = preexec.Execute(block, s2);
  EXPECT_EQ(s1.Digest(), s2.Digest());
  // Pre-execution removes the read phase from the critical path.
  EXPECT_LE(r2.makespan_ns, r1.makespan_ns);
  EXPECT_EQ(preexec.name(), "parallelevm+preexec");
}

TEST(ParallelEvmTest, RedoFailureFallsBackToFullReexecution) {
  // Two transferFroms racing for the last tokens: the second must abort its
  // redo (balance guard) and still commit correctly via re-execution.
  WorldState genesis = FundedWorld(4);
  genesis.SetCode(kToken, BuildErc20Code());
  Address owner = Address::FromId(0x1000);
  genesis.SetStorage(kToken, Erc20BalanceSlot(owner), U256(100));
  for (uint64_t u = 1; u < 4; ++u) {
    genesis.SetStorage(kToken,
                       Erc20AllowanceSlot(owner, Address::FromId(0x1000 + u)), ~U256{});
  }
  auto drain = [&](uint64_t spender, uint64_t amount) {
    Transaction tx;
    tx.from = Address::FromId(spender);
    tx.to = kToken;
    tx.data = Erc20TransferFromCall(owner, Address::FromId(spender + 0x100), U256(amount));
    tx.gas_limit = 200'000;
    tx.gas_price = U256(1);
    return tx;
  };
  Block block = MakeBlock({drain(0x1001, 95), drain(0x1002, 20)});

  ExecOptions options;
  options.threads = 4;
  SerialExecutor serial(options);
  ParallelEvmExecutor pevm(options);
  WorldState s1 = genesis;
  WorldState s2 = genesis;
  BlockReport rs = serial.Execute(block, s1);
  BlockReport rp = pevm.Execute(block, s2);
  EXPECT_EQ(s1.Digest(), s2.Digest());
  EXPECT_EQ(rp.conflicts, 1);
  EXPECT_EQ(rp.redo_fail, 1);
  EXPECT_EQ(rp.full_reexecutions, 1);
  // Serial says tx2 reverts (insufficient balance after tx1).
  EXPECT_EQ(rs.receipts[1].status, EvmStatus::kRevert);
  EXPECT_EQ(rp.receipts[1].status, EvmStatus::kRevert);
}

TEST(BlockStmTest, DependencyChainProducesAbortsButConverges) {
  // Ten hot-receiver transfers: each conflicts with all predecessors.
  WorldState genesis = FundedWorld(12);
  std::vector<Transaction> txs;
  for (uint64_t u = 1; u <= 10; ++u) {
    txs.push_back(NativeTransfer(0x1000 + u, 0x1000, 100 * u));
  }
  Block block = MakeBlock(txs);
  ExecOptions options;
  options.threads = 4;
  SerialExecutor serial(options);
  BlockStmExecutor stm(options);
  WorldState s1 = genesis;
  WorldState s2 = genesis;
  serial.Execute(block, s1);
  BlockReport report = stm.Execute(block, s2);
  EXPECT_EQ(s1.Digest(), s2.Digest());
  EXPECT_GT(report.conflicts + report.full_reexecutions, 0);
}

TEST(TwoPhaseLockingTest, HotKeyContentionCausesWoundsOrWaits) {
  WorldState genesis = FundedWorld(20);
  std::vector<Transaction> txs;
  for (uint64_t u = 1; u <= 16; ++u) {
    txs.push_back(NativeTransfer(0x1000 + u, 0x1000, 100));  // All credit user 0.
  }
  Block block = MakeBlock(txs);
  ExecOptions options;
  options.threads = 8;
  SerialExecutor serial(options);
  TwoPhaseLockingExecutor two_pl(options);
  WorldState s1 = genesis;
  WorldState s2 = genesis;
  BlockReport rs = serial.Execute(block, s1);
  BlockReport rp = two_pl.Execute(block, s2);
  EXPECT_EQ(s1.Digest(), s2.Digest());
  // The hot-key serialization must keep 2PL close to serial.
  EXPECT_GT(rp.makespan_ns, rs.makespan_ns / 4);
}

TEST(ExecutorPropertyTest, MoreThreadsNeverSlowDownParallelEvm) {
  WorldState genesis = FundedWorld(64);
  std::vector<Transaction> txs;
  for (uint64_t u = 0; u < 48; ++u) {
    txs.push_back(NativeTransfer(0x1000 + u, 0x1000 + ((u + 7) % 64), 50));
  }
  Block block = MakeBlock(txs);
  uint64_t previous = ~uint64_t{0};
  for (int threads : {1, 2, 4, 8, 16}) {
    ExecOptions options;
    options.threads = threads;
    ParallelEvmExecutor pevm(options);
    WorldState state = genesis;
    BlockReport report = pevm.Execute(block, state);
    EXPECT_LE(report.makespan_ns, previous + previous / 8) << threads << " threads";
    previous = report.makespan_ns;
  }
}

TEST(ExecutorPropertyTest, PrefetchNeverSlowsAnyExecutor) {
  WorldState genesis = FundedWorld(32);
  std::vector<Transaction> txs;
  for (uint64_t u = 0; u < 24; ++u) {
    txs.push_back(NativeTransfer(0x1000 + u, 0x1000 + ((u + 3) % 32), 50));
  }
  Block block = MakeBlock(txs);
  ExecOptions cold;
  cold.threads = 8;
  ExecOptions warm = cold;
  warm.prefetch = true;
  auto check = [&](auto make) {
    WorldState s1 = genesis;
    WorldState s2 = genesis;
    uint64_t t_cold = make(cold).Execute(block, s1).makespan_ns;
    uint64_t t_warm = make(warm).Execute(block, s2).makespan_ns;
    EXPECT_LE(t_warm, t_cold);
    EXPECT_EQ(s1.Digest(), s2.Digest());
  };
  check([](const ExecOptions& o) { return SerialExecutor(o); });
  check([](const ExecOptions& o) { return OccExecutor(o); });
  check([](const ExecOptions& o) { return ParallelEvmExecutor(o); });
  check([](const ExecOptions& o) { return BlockStmExecutor(o); });
}

}  // namespace
}  // namespace pevm
