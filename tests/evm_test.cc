#include <gtest/gtest.h>

#include "src/evm/eval.h"
#include "src/evm/host.h"
#include "src/evm/interpreter.h"
#include "src/exec/apply.h"
#include "src/state/state_view.h"
#include "src/workload/assembler.h"
#include "src/workload/contracts.h"

namespace pevm {
namespace {

const Address kAlice = Address::FromId(0xA11CE);
const Address kBob = Address::FromId(0xB0B);
const Address kCarol = Address::FromId(0xCA801);
const Address kContract = Address::FromId(0xC0DE);
const Address kToken = Address::FromId(0x70CE);
const Address kToken2 = Address::FromId(0x70CE2);
const Address kPool = Address::FromId(0xD00);
const Address kFund = Address::FromId(0xF00D);

constexpr int64_t kGas = 10'000'000;

// Runs `code` as kContract with the given calldata and returns the result.
struct RunOutput {
  EvmResult result;
  WorldState state;
};

class EvmTest : public ::testing::Test {
 protected:
  // Executes code at kContract. Leaves `world_` mutated through `view_`.
  EvmResult Run(const Bytes& code, const Bytes& calldata = {}, const U256& value = U256{}) {
    world_.SetCode(kContract, code);
    view_.emplace(world_);
    StateViewHost host(*view_);
    Interpreter interp(host, block_, tx_ctx_);
    Message msg;
    msg.code_address = kContract;
    msg.storage_address = kContract;
    msg.caller = kAlice;
    msg.value = value;
    msg.data = calldata;
    msg.gas = kGas;
    return interp.Execute(msg);
  }

  // Assembles, runs, expects success, and returns the single returned word.
  U256 RunForWord(Assembler& a) {
    EvmResult r = Run(a.Build());
    EXPECT_EQ(r.status, EvmStatus::kSuccess) << EvmStatusName(r.status);
    EXPECT_EQ(r.output.size(), 32u);
    return U256::FromBigEndian(r.output);
  }

  WorldState world_;
  std::optional<StateView> view_;
  BlockContext block_;
  TxContext tx_ctx_{kAlice, U256(1)};
};

// Emits code returning the top-of-stack word.
void ReturnTop(Assembler& a) {
  a.Push(0).Op(Opcode::kMstore).Push(0x20).Push(0).Op(Opcode::kReturn);
}

TEST_F(EvmTest, ArithmeticAndReturn) {
  Assembler a;
  a.Push(20).Push(30).Op(Opcode::kAdd);  // 50
  a.Push(8).Op(Opcode::kMul);            // MUL pops 8, 50 -> 400
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256(400));
}

TEST_F(EvmTest, StackOrderOfSubAndDiv) {
  // SUB computes top - second.
  Assembler a;
  a.Push(10).Push(30).Op(Opcode::kSub);  // 30 - 10
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256(20));

  Assembler b;
  b.Push(5).Push(100).Op(Opcode::kDiv);  // 100 / 5
  ReturnTop(b);
  EXPECT_EQ(RunForWord(b), U256(20));
}

TEST_F(EvmTest, DupAndSwapSemantics) {
  Assembler a;
  a.Push(1).Push(2).Push(3);   // [1,2,3]
  a.Op(Opcode::kDup3);         // [1,2,3,1]
  a.Op(Opcode::kSwap1);        // [1,2,1,3]
  a.Op(Opcode::kSub);          // 3-1=2 -> [1,2,2]
  a.Op(Opcode::kAdd);          // 4
  a.Op(Opcode::kAdd);          // 5
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256(5));
}

TEST_F(EvmTest, MemoryStoreLoad) {
  Assembler a;
  a.Push(0xdead).Push(0x40).Op(Opcode::kMstore);
  a.Push(0x40).Op(Opcode::kMload);
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256(0xdead));
}

TEST_F(EvmTest, Mstore8WritesSingleByte) {
  Assembler a;
  a.Push(0x1234).Push(0).Op(Opcode::kMstore8);  // mem[0] = 0x34.
  a.Push(0).Op(Opcode::kMload);
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256::Shl(248, U256(0x34)));
}

TEST_F(EvmTest, StorageRoundTrip) {
  Assembler a;
  a.Push(42).Push(7).Op(Opcode::kSstore);  // storage[7] = 42.
  a.Push(7).Op(Opcode::kSload);
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256(42));
  EXPECT_EQ(view_->write_set().at(StateKey::Storage(kContract, U256(7))), U256(42));
}

TEST_F(EvmTest, JumpSkipsCode) {
  Assembler a;
  a.Push(1).Jump("end");
  a.Push(99).Op(Opcode::kAdd);  // Skipped.
  a.Label("end");
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256(1));
}

TEST_F(EvmTest, JumpiTakenAndNotTaken) {
  Assembler a;
  a.Push(7);
  a.Push(1).JumpI("skip");  // Taken.
  a.Push(100).Op(Opcode::kAdd);
  a.Label("skip");
  a.Push(0).JumpI("skip2");  // Not taken.
  a.Push(1000).Op(Opcode::kAdd);
  a.Label("skip2");
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256(1007));
}

TEST_F(EvmTest, BadJumpHalts) {
  Assembler a;
  a.Push(3).Op(Opcode::kJump);  // 3 is not a JUMPDEST.
  EvmResult r = Run(a.Build());
  EXPECT_EQ(r.status, EvmStatus::kBadJumpDestination);
  EXPECT_EQ(r.gas_left, 0);
}

TEST_F(EvmTest, JumpIntoPushDataRejected) {
  Assembler a;
  // PUSH2 0x5b5b makes bytes that look like JUMPDESTs inside push data.
  a.Push(4).Op(Opcode::kJump);
  a.Push(U256(0x5b5b));
  EvmResult r = Run(a.Build());
  EXPECT_EQ(r.status, EvmStatus::kBadJumpDestination);
}

TEST_F(EvmTest, StackUnderflowHalts) {
  Assembler a;
  a.Op(Opcode::kAdd);
  EvmResult r = Run(a.Build());
  EXPECT_EQ(r.status, EvmStatus::kStackUnderflow);
}

TEST_F(EvmTest, OutOfGasOnLoop) {
  Assembler a;
  a.Label("loop").Jump("loop");
  EvmResult r = Run(a.Build());
  EXPECT_EQ(r.status, EvmStatus::kOutOfGas);
  EXPECT_EQ(r.gas_left, 0);
}

TEST_F(EvmTest, RevertReturnsPayloadAndGas) {
  Assembler a;
  a.Push(0xbad).Push(0).Op(Opcode::kMstore);
  a.Push(0x20).Push(0).Op(Opcode::kRevert);
  EvmResult r = Run(a.Build());
  EXPECT_EQ(r.status, EvmStatus::kRevert);
  EXPECT_GT(r.gas_left, 0);
  ASSERT_EQ(r.output.size(), 32u);
  EXPECT_EQ(U256::FromBigEndian(r.output), U256(0xbad));
}

TEST_F(EvmTest, CalldataloadZeroPadsPastEnd) {
  Assembler a;
  a.Push(2).Op(Opcode::kCalldataload);
  ReturnTop(a);
  Bytes data = {0x11, 0x22, 0x33, 0x44};
  world_.SetCode(kContract, a.Build());
  EvmResult r = Run(a.Build(), data);
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  // Bytes 2..34 of calldata: 0x33 0x44 then zeros.
  EXPECT_EQ(U256::FromBigEndian(r.output), U256::Shl(240, U256(0x3344)));
}

TEST_F(EvmTest, EnvOpcodes) {
  Assembler a;
  a.Op(Opcode::kCaller);
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a).ToAddress(), kAlice);

  Assembler b;
  b.Op(Opcode::kAddress);
  ReturnTop(b);
  EXPECT_EQ(RunForWord(b).ToAddress(), kContract);
}

TEST_F(EvmTest, Sha3MatchesKeccak) {
  Assembler a;
  a.Push(0xabcdef).Push(0).Op(Opcode::kMstore);
  a.Push(0x20).Push(0).Op(Opcode::kSha3);
  ReturnTop(a);
  std::array<uint8_t, 32> be = U256(0xabcdef).ToBigEndian();
  EXPECT_EQ(RunForWord(a), Keccak256Word(BytesView(be.data(), be.size())));
}

TEST_F(EvmTest, SstoreGasDependsOnPriorValue) {
  // Fresh slot: 20000. Overwrite: 5000.
  Assembler a;
  a.Push(1).Push(5).Op(Opcode::kSstore);
  a.Push(2).Push(5).Op(Opcode::kSstore);
  a.Op(Opcode::kStop);
  EvmResult r = Run(a.Build());
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  // 4 pushes (3 each) + 20000 + 5000 + SLOAD-free = used.
  int64_t used = kGas - r.gas_left;
  EXPECT_EQ(used, 4 * 3 + 20000 + 5000);
}

TEST_F(EvmTest, BalanceAndSelfbalance) {
  world_.SetBalance(kContract, U256(777));
  Assembler a;
  a.Op(Opcode::kSelfbalance);
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256(777));

  world_.SetBalance(kBob, U256(123));
  Assembler b;
  b.Push(kBob).Op(Opcode::kBalance);
  ReturnTop(b);
  EXPECT_EQ(RunForWord(b), U256(123));
}

// --- Message calls. ---

TEST_F(EvmTest, InnerCallExecutesCalleeCode) {
  // Callee returns 42; caller forwards it.
  Assembler callee;
  callee.Push(42);
  ReturnTop(callee);
  world_.SetCode(kToken, callee.Build());

  Assembler caller;
  // CALL(gas, kToken, 0, in=0 len=0, out=0 len=32) then return mem[0..32).
  caller.Push(0x20).Push(0).Push(0).Push(0).Push(0).Push(kToken).Op(Opcode::kGas);
  caller.Op(Opcode::kCall);
  caller.Op(Opcode::kPop);  // success flag
  caller.Push(0).Op(Opcode::kMload);
  ReturnTop(caller);
  EXPECT_EQ(RunForWord(caller), U256(42));
}

TEST_F(EvmTest, CallValueTransfersBalance) {
  world_.SetBalance(kContract, U256(1000));
  Assembler a;
  // CALL(gas, kBob, 600, 0,0, 0,0); return success flag.
  a.Push(0).Push(0).Push(0).Push(0).Push(600).Push(kBob).Op(Opcode::kGas);
  a.Op(Opcode::kCall);
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256(1));
  EXPECT_EQ(view_->GetBalance(kBob), U256(600));
  EXPECT_EQ(view_->GetBalance(kContract), U256(400));
}

TEST_F(EvmTest, CallWithInsufficientBalanceFails) {
  world_.SetBalance(kContract, U256(10));
  Assembler a;
  a.Push(0).Push(0).Push(0).Push(0).Push(600).Push(kBob).Op(Opcode::kGas);
  a.Op(Opcode::kCall);
  ReturnTop(a);
  EXPECT_EQ(RunForWord(a), U256{});  // success == 0.
  EXPECT_EQ(view_->GetBalance(kBob), U256{});
}

TEST_F(EvmTest, RevertInCalleeRollsBackItsWrites) {
  Assembler callee;
  callee.Push(99).Push(1).Op(Opcode::kSstore);
  callee.Push(0).Push(0).Op(Opcode::kRevert);
  world_.SetCode(kToken, callee.Build());

  Assembler caller;
  caller.Push(77).Push(1).Op(Opcode::kSstore);  // Caller's own write survives.
  caller.Push(0).Push(0).Push(0).Push(0).Push(0).Push(kToken).Op(Opcode::kGas);
  caller.Op(Opcode::kCall);
  ReturnTop(caller);
  EXPECT_EQ(RunForWord(caller), U256{});  // Callee reverted.
  EXPECT_EQ(view_->GetStorage(kContract, U256(1)), U256(77));
  EXPECT_EQ(view_->GetStorage(kToken, U256(1)), U256{});
}

TEST_F(EvmTest, StaticcallBlocksStores) {
  Assembler callee;
  callee.Push(99).Push(1).Op(Opcode::kSstore);
  callee.Op(Opcode::kStop);
  world_.SetCode(kToken, callee.Build());

  Assembler caller;
  caller.Push(0).Push(0).Push(0).Push(0).Push(kToken).Op(Opcode::kGas);
  caller.Op(Opcode::kStaticcall);
  ReturnTop(caller);
  EXPECT_EQ(RunForWord(caller), U256{});  // Inner frame halted.
  EXPECT_EQ(view_->GetStorage(kToken, U256(1)), U256{});
}

TEST_F(EvmTest, DelegatecallUsesCallerStorage) {
  Assembler library;
  library.Push(5).Push(9).Op(Opcode::kSstore);  // storage[9] = 5 — in caller's context.
  library.Op(Opcode::kStop);
  world_.SetCode(kToken, library.Build());

  Assembler caller;
  caller.Push(0).Push(0).Push(0).Push(0).Push(kToken).Op(Opcode::kGas);
  caller.Op(Opcode::kDelegatecall);
  ReturnTop(caller);
  EXPECT_EQ(RunForWord(caller), U256(1));
  EXPECT_EQ(view_->GetStorage(kContract, U256(9)), U256(5));
  EXPECT_EQ(view_->GetStorage(kToken, U256(9)), U256{});
}

TEST_F(EvmTest, ReturndatacopyAndSize) {
  Assembler callee;
  callee.Push(0xfeed);
  ReturnTop(callee);
  world_.SetCode(kToken, callee.Build());

  Assembler caller;
  caller.Push(0).Push(0).Push(0).Push(0).Push(0).Push(kToken).Op(Opcode::kGas);
  caller.Op(Opcode::kCall).Op(Opcode::kPop);
  // Stack [32, 0, 0x40]: RETURNDATACOPY pops dst=0x40, src=0, len=32.
  caller.Op(Opcode::kReturndatasize);
  caller.Push(0).Push(0x40);
  caller.Op(Opcode::kReturndatacopy);
  caller.Push(0x40).Op(Opcode::kMload);
  ReturnTop(caller);
  EvmResult r = Run(caller.Build());
  ASSERT_EQ(r.status, EvmStatus::kSuccess) << EvmStatusName(r.status);
  EXPECT_EQ(U256::FromBigEndian(r.output), U256(0xfeed));
}

TEST_F(EvmTest, ReturndatacopyPastEndHalts) {
  Assembler callee;
  callee.Push(0xfeed);
  ReturnTop(callee);
  world_.SetCode(kToken, callee.Build());

  Assembler caller;
  caller.Push(0).Push(0).Push(0).Push(0).Push(0).Push(kToken).Op(Opcode::kGas);
  caller.Op(Opcode::kCall).Op(Opcode::kPop);
  caller.Push(64).Push(0).Push(0).Op(Opcode::kReturndatacopy);  // 64 > 32: halt.
  caller.Op(Opcode::kStop);
  EvmResult r = Run(caller.Build());
  EXPECT_EQ(r.status, EvmStatus::kOutOfGas);
}

// --- The assembled workload contracts, end to end. ---

class Erc20Test : public EvmTest {
 protected:
  void SetUp() override {
    world_.SetCode(kToken, BuildErc20Code());
    world_.SetStorage(kToken, Erc20BalanceSlot(kAlice), U256(1000));
    view_.emplace(world_);
  }

  EvmResult CallToken(const Address& caller, const Bytes& calldata) {
    StateViewHost host(*view_);
    Interpreter interp(host, block_, tx_ctx_);
    Message msg;
    msg.code_address = kToken;
    msg.storage_address = kToken;
    msg.caller = caller;
    msg.data = calldata;
    msg.gas = kGas;
    return interp.Execute(msg);
  }

  U256 BalanceOf(const Address& who) {
    return view_->GetStorage(kToken, Erc20BalanceSlot(who));
  }
};

TEST_F(Erc20Test, TransferMovesTokens) {
  EvmResult r = CallToken(kAlice, Erc20TransferCall(kBob, U256(250)));
  ASSERT_EQ(r.status, EvmStatus::kSuccess) << EvmStatusName(r.status);
  EXPECT_EQ(U256::FromBigEndian(r.output), U256(1));
  EXPECT_EQ(BalanceOf(kAlice), U256(750));
  EXPECT_EQ(BalanceOf(kBob), U256(250));
}

TEST_F(Erc20Test, TransferInsufficientBalanceReverts) {
  EvmResult r = CallToken(kAlice, Erc20TransferCall(kBob, U256(1001)));
  EXPECT_EQ(r.status, EvmStatus::kRevert);
  EXPECT_EQ(BalanceOf(kAlice), U256(1000));
  EXPECT_EQ(BalanceOf(kBob), U256{});
}

TEST_F(Erc20Test, TransferExactBalanceSucceeds) {
  EvmResult r = CallToken(kAlice, Erc20TransferCall(kBob, U256(1000)));
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  EXPECT_EQ(BalanceOf(kAlice), U256{});
  EXPECT_EQ(BalanceOf(kBob), U256(1000));
}

TEST_F(Erc20Test, BalanceOfReturnsBalance) {
  EvmResult r = CallToken(kBob, Erc20BalanceOfCall(kAlice));
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  EXPECT_EQ(U256::FromBigEndian(r.output), U256(1000));
}

TEST_F(Erc20Test, ApproveThenTransferFrom) {
  ASSERT_EQ(CallToken(kAlice, Erc20ApproveCall(kBob, U256(300))).status, EvmStatus::kSuccess);
  EXPECT_EQ(view_->GetStorage(kToken, Erc20AllowanceSlot(kAlice, kBob)), U256(300));

  EvmResult r = CallToken(kBob, Erc20TransferFromCall(kAlice, kCarol, U256(200)));
  ASSERT_EQ(r.status, EvmStatus::kSuccess) << EvmStatusName(r.status);
  EXPECT_EQ(BalanceOf(kAlice), U256(800));
  EXPECT_EQ(BalanceOf(kCarol), U256(200));
  EXPECT_EQ(view_->GetStorage(kToken, Erc20AllowanceSlot(kAlice, kBob)), U256(100));
}

TEST_F(Erc20Test, TransferFromBeyondAllowanceReverts) {
  ASSERT_EQ(CallToken(kAlice, Erc20ApproveCall(kBob, U256(100))).status, EvmStatus::kSuccess);
  EvmResult r = CallToken(kBob, Erc20TransferFromCall(kAlice, kCarol, U256(200)));
  EXPECT_EQ(r.status, EvmStatus::kRevert);
  EXPECT_EQ(BalanceOf(kAlice), U256(1000));
}

TEST_F(Erc20Test, MintIncreasesSupplyAndBalance) {
  ASSERT_EQ(CallToken(kCarol, Erc20MintCall(kCarol, U256(5000))).status, EvmStatus::kSuccess);
  EXPECT_EQ(BalanceOf(kCarol), U256(5000));
  EvmResult r = CallToken(kCarol, Erc20TotalSupplyCall());
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  EXPECT_EQ(U256::FromBigEndian(r.output), U256(5000));
}

TEST_F(Erc20Test, UnknownSelectorReverts) {
  Bytes junk = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(CallToken(kAlice, junk).status, EvmStatus::kRevert);
}

class AmmTest : public EvmTest {
 protected:
  void SetUp() override {
    world_.SetCode(kToken, BuildErc20Code());
    world_.SetCode(kToken2, BuildErc20Code());
    world_.SetCode(kPool, BuildAmmCode());
    world_.SetStorage(kPool, U256(kAmmToken0Slot), U256::FromAddress(kToken));
    world_.SetStorage(kPool, U256(kAmmToken1Slot), U256::FromAddress(kToken2));
    world_.SetStorage(kPool, U256(kAmmReserve0Slot), U256(1'000'000));
    world_.SetStorage(kPool, U256(kAmmReserve1Slot), U256(1'000'000));
    // The pool owns reserves in both tokens; Alice owns token0 and approved
    // the pool.
    world_.SetStorage(kToken, Erc20BalanceSlot(kPool), U256(1'000'000));
    world_.SetStorage(kToken2, Erc20BalanceSlot(kPool), U256(1'000'000));
    world_.SetStorage(kToken, Erc20BalanceSlot(kAlice), U256(50'000));
    world_.SetStorage(kToken, Erc20AllowanceSlot(kAlice, kPool), ~U256{});
    view_.emplace(world_);
  }

  EvmResult Swap(const Address& caller, const U256& amount_in, bool zero_for_one) {
    StateViewHost host(*view_);
    Interpreter interp(host, block_, tx_ctx_);
    Message msg;
    msg.code_address = kPool;
    msg.storage_address = kPool;
    msg.caller = caller;
    msg.data = AmmSwapCall(amount_in, zero_for_one);
    msg.gas = kGas;
    // Mirror ApplyTransaction: the top frame's writes roll back on failure.
    size_t snapshot = view_->Snapshot();
    EvmResult r = interp.Execute(msg);
    if (r.status != EvmStatus::kSuccess) {
      view_->RevertToSnapshot(snapshot);
    }
    return r;
  }
};

TEST_F(AmmTest, SwapMovesTokensAndUpdatesReserves) {
  EvmResult r = Swap(kAlice, U256(10'000), /*zero_for_one=*/true);
  ASSERT_EQ(r.status, EvmStatus::kSuccess) << EvmStatusName(r.status);
  // out = in*997*rOut / (rIn*1000 + in*997) = 9970000000000 / 1009970000 = 9871...
  U256 out = U256::FromBigEndian(r.output);
  U256 expected = U256::Div(U256(10'000) * U256(997) * U256(1'000'000),
                            U256(1'000'000) * U256(1000) + U256(10'000) * U256(997));
  EXPECT_EQ(out, expected);
  // Alice paid token0, received token1.
  EXPECT_EQ(view_->GetStorage(kToken, Erc20BalanceSlot(kAlice)), U256(40'000));
  EXPECT_EQ(view_->GetStorage(kToken2, Erc20BalanceSlot(kAlice)), out);
  // Reserves updated.
  EXPECT_EQ(view_->GetStorage(kPool, U256(kAmmReserve0Slot)), U256(1'010'000));
  EXPECT_EQ(view_->GetStorage(kPool, U256(kAmmReserve1Slot)), U256(1'000'000) - out);
  // Pool token balances match reserves.
  EXPECT_EQ(view_->GetStorage(kToken, Erc20BalanceSlot(kPool)), U256(1'010'000));
  EXPECT_EQ(view_->GetStorage(kToken2, Erc20BalanceSlot(kPool)), U256(1'000'000) - out);
}

TEST_F(AmmTest, SwapWithoutApprovalReverts) {
  EvmResult r = Swap(kBob, U256(10'000), true);
  EXPECT_EQ(r.status, EvmStatus::kRevert);
  EXPECT_EQ(view_->GetStorage(kPool, U256(kAmmReserve0Slot)), U256(1'000'000));
}

TEST_F(AmmTest, ReverseDirectionSwap) {
  // Give Alice token1 + approval for the reverse direction.
  world_.SetStorage(kToken2, Erc20BalanceSlot(kAlice), U256(50'000));
  world_.SetStorage(kToken2, Erc20AllowanceSlot(kAlice, kPool), ~U256{});
  view_.emplace(world_);
  EvmResult r = Swap(kAlice, U256(5'000), /*zero_for_one=*/false);
  ASSERT_EQ(r.status, EvmStatus::kSuccess) << EvmStatusName(r.status);
  EXPECT_EQ(view_->GetStorage(kPool, U256(kAmmReserve1Slot)), U256(1'005'000));
}

class CrowdfundTest : public EvmTest {
 protected:
  void SetUp() override {
    world_.SetCode(kFund, BuildCrowdfundCode());
    world_.SetBalance(kAlice, U256(10'000));
    view_.emplace(world_);
  }
};

TEST_F(CrowdfundTest, ContributionsAccumulate) {
  StateViewHost host(*view_);
  Interpreter interp(host, block_, tx_ctx_);
  Message msg;
  msg.code_address = kFund;
  msg.storage_address = kFund;
  msg.caller = kAlice;
  msg.data = CrowdfundContributeCall();
  msg.value = U256(500);  // ApplyTransaction normally moves value; simulate.
  msg.gas = kGas;
  view_->SetBalance(kAlice, U256(9'500));
  view_->SetBalance(kFund, U256(500));
  EvmResult r = interp.Execute(msg);
  ASSERT_EQ(r.status, EvmStatus::kSuccess) << EvmStatusName(r.status);
  EXPECT_EQ(view_->GetStorage(kFund, U256(kCrowdfundTotalSlot)), U256(500));
  EXPECT_EQ(view_->GetStorage(kFund, CrowdfundContributionSlot(kAlice)), U256(500));

  // Second contribution accumulates.
  EvmResult r2 = interp.Execute(msg);
  ASSERT_EQ(r2.status, EvmStatus::kSuccess);
  EXPECT_EQ(view_->GetStorage(kFund, U256(kCrowdfundTotalSlot)), U256(1000));
}

// --- ApplyTransaction (envelope) tests. ---

class ApplyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_.SetBalance(kAlice, U256::Exp(U256(10), U256(18)));  // 1 ether.
    world_.SetCode(kToken, BuildErc20Code());
    world_.SetStorage(kToken, Erc20BalanceSlot(kAlice), U256(1000));
  }

  Transaction MakeTransfer(const Address& from, const Address& to, const U256& value,
                           uint64_t nonce = 0) {
    Transaction tx;
    tx.from = from;
    tx.to = to;
    tx.value = value;
    tx.nonce = nonce;
    tx.gas_limit = 100'000;
    tx.gas_price = U256(1);
    return tx;
  }

  WorldState world_;
  BlockContext block_;
};

TEST_F(ApplyTest, NativeTransferMovesValueAndChargesGas) {
  StateView view(world_);
  Transaction tx = MakeTransfer(kAlice, kBob, U256(1234));
  Receipt r = ApplyTransaction(view, block_, tx);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.status, EvmStatus::kSuccess);
  EXPECT_EQ(r.gas_used, kTxBaseGas);
  EXPECT_EQ(view.GetBalance(kBob), U256(1234));
  EXPECT_EQ(view.GetNonce(kAlice), 1u);
  // Sender lost value + gas.
  EXPECT_EQ(view.GetBalance(kAlice),
            U256::Exp(U256(10), U256(18)) - U256(1234) - U256(kTxBaseGas));
  EXPECT_EQ(r.fee, U256(kTxBaseGas));
}

TEST_F(ApplyTest, BadNonceIsInvalidButLeavesReads) {
  StateView view(world_);
  Transaction tx = MakeTransfer(kAlice, kBob, U256(1), /*nonce=*/5);
  Receipt r = ApplyTransaction(view, block_, tx);
  EXPECT_FALSE(r.valid);
  EXPECT_TRUE(view.write_set().empty());
  EXPECT_TRUE(view.read_set().contains(StateKey::Nonce(kAlice)));
}

TEST_F(ApplyTest, InsufficientUpfrontBalanceIsInvalid) {
  StateView view(world_);
  Transaction tx = MakeTransfer(kBob, kCarol, U256(1));  // Bob has nothing.
  Receipt r = ApplyTransaction(view, block_, tx);
  EXPECT_FALSE(r.valid);
  EXPECT_TRUE(view.write_set().empty());
}

TEST_F(ApplyTest, Erc20TransferThroughEnvelope) {
  StateView view(world_);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kToken;
  tx.data = Erc20TransferCall(kBob, U256(400));
  tx.gas_limit = 200'000;
  tx.gas_price = U256(1);
  Receipt r = ApplyTransaction(view, block_, tx);
  ASSERT_TRUE(r.valid);
  ASSERT_EQ(r.status, EvmStatus::kSuccess) << EvmStatusName(r.status);
  EXPECT_EQ(view.GetStorage(kToken, Erc20BalanceSlot(kBob)), U256(400));
  EXPECT_GT(r.gas_used, kTxBaseGas);
  EXPECT_LT(r.gas_used, 100'000);
}

TEST_F(ApplyTest, RevertedExecutionStillChargesGas) {
  StateView view(world_);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kToken;
  tx.data = Erc20TransferCall(kBob, U256(5000));  // More than Alice's 1000.
  tx.gas_limit = 200'000;
  tx.gas_price = U256(1);
  Receipt r = ApplyTransaction(view, block_, tx);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.status, EvmStatus::kRevert);
  // Token state untouched; gas charged; nonce bumped.
  EXPECT_EQ(view.GetStorage(kToken, Erc20BalanceSlot(kBob)), U256{});
  EXPECT_GT(r.gas_used, 0);
  EXPECT_EQ(view.GetNonce(kAlice), 1u);
}

TEST_F(ApplyTest, StatsCountStorageOps) {
  StateView view(world_);
  Transaction tx;
  tx.from = kAlice;
  tx.to = kToken;
  tx.data = Erc20TransferCall(kBob, U256(400));
  tx.gas_limit = 200'000;
  tx.gas_price = U256(1);
  Receipt r = ApplyTransaction(view, block_, tx);
  ASSERT_EQ(r.status, EvmStatus::kSuccess);
  EXPECT_EQ(r.stats.sstores, 2u);  // balances[from], balances[to].
  EXPECT_GE(r.stats.sloads, 2u);
  EXPECT_GT(r.stats.instructions, 50u);
}

}  // namespace
}  // namespace pevm
