// The paper's Lemma 2 as an executable property: for arbitrary transactions
// and arbitrary committed-state perturbations of their read sets, a
// *successful* redo must produce exactly the write set (and preserve the gas)
// of a full re-execution against the perturbed state. A redo that declines
// (guard failure) is always acceptable — the executor falls back to full
// re-execution — but a redo that succeeds with a wrong answer would be a
// serializability bug.
#include <gtest/gtest.h>

#include <random>

#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"
#include "src/state/state_view.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

struct Spec {
  Receipt receipt;
  ReadSet reads;
  WriteSet writes;
  TxLog log;
};

Spec Speculate(const WorldState& base, const BlockContext& block, const Transaction& tx) {
  StateView view(base);
  SsaBuilder builder;
  Spec s;
  s.receipt = ApplyTransaction(view, block, tx, &builder);
  if (!s.receipt.valid) {
    builder.MarkNotRedoable();
  }
  s.log = builder.TakeLog();
  s.reads = view.read_set();
  s.writes = view.take_write_set();
  return s;
}

// Perturbs `state` at a random subset of `reads`' keys with values another
// transaction could plausibly have committed.
ConflictMap Perturb(WorldState& state, const ReadSet& reads, std::mt19937_64& rng) {
  ConflictMap conflicts;
  for (const auto& [key, observed] : reads) {
    if (rng() % 3 != 0) {
      continue;
    }
    U256 delta(1 + rng() % 1000);
    U256 perturbed;
    switch (key.kind) {
      case StateKeyKind::kBalance:
        perturbed = (rng() % 2 == 0) ? observed + delta
                                     : (observed > delta ? observed - delta : observed + delta);
        break;
      case StateKeyKind::kNonce:
        perturbed = observed + U256(1);
        break;
      case StateKeyKind::kStorage:
        perturbed = (rng() % 2 == 0) ? observed + delta
                                     : (observed > delta ? observed - delta : observed + delta);
        break;
    }
    if (perturbed == observed) {
      continue;
    }
    state.Set(key, perturbed);
    conflicts.emplace(key, perturbed);
  }
  return conflicts;
}

class RedoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RedoPropertyTest, SuccessfulRedoEqualsFullReexecution) {
  WorkloadConfig config;
  config.seed = GetParam();
  config.transactions_per_block = 80;
  config.users = 1200;
  config.tokens = 6;
  config.pools = 3;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  Block block = gen.MakeBlock();

  std::mt19937_64 rng(GetParam() * 31 + 7);
  int redo_successes = 0;
  int redo_declines = 0;
  for (size_t i = 0; i < block.transactions.size(); ++i) {
    const Transaction& tx = block.transactions[i];
    Spec spec = Speculate(genesis, block.context, tx);
    if (!spec.receipt.valid || spec.receipt.status != EvmStatus::kSuccess) {
      continue;  // Reverting/invalid transactions are non-redoable by design.
    }

    WorldState perturbed = genesis;
    ConflictMap conflicts = Perturb(perturbed, spec.reads, rng);
    if (conflicts.empty()) {
      continue;
    }

    RedoResult redo =
        RunRedo(spec.log, conflicts, [&](const StateKey& k) { return perturbed.Get(k); });

    // The oracle: full re-execution against the perturbed state.
    StateView oracle_view(perturbed);
    Receipt oracle = ApplyTransaction(oracle_view, block.context, tx);

    if (!redo.success) {
      ++redo_declines;
      continue;
    }
    ++redo_successes;
    // Lemma 2: identical outcome. The oracle must agree on validity, gas
    // (gas-flow constraints held) and the exact write set.
    ASSERT_TRUE(oracle.valid) << "tx " << i;
    ASSERT_EQ(oracle.status, EvmStatus::kSuccess) << "tx " << i;
    EXPECT_EQ(oracle.gas_used, spec.receipt.gas_used) << "tx " << i;
    const WriteSet& oracle_writes = oracle_view.write_set();
    ASSERT_EQ(redo.write_set.size(), oracle_writes.size()) << "tx " << i;
    for (const auto& [key, value] : oracle_writes) {
      ASSERT_TRUE(redo.write_set.contains(key)) << "tx " << i << " " << key.ToString();
      EXPECT_EQ(redo.write_set.at(key), value) << "tx " << i << " " << key.ToString();
    }
  }
  // The property is vacuous if the redo never engages; require real coverage.
  EXPECT_GT(redo_successes, 5) << "declines: " << redo_declines;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedoPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace pevm
