// Unit and scenario tests for the SSA operation log (§5.2) and the redo
// phase (§5.3). The central properties:
//   1. Log faithfulness: WriteSetFromLog == the StateView write set.
//   2. Compactness: the log is a small fraction of executed instructions.
//   3. Redo correctness: patching conflicts and partially re-executing gives
//      exactly the state a full serial re-execution would give (Lemma 2).
//   4. Guard soundness: when re-execution would diverge (control flow, gas,
//      addresses), the redo aborts instead of committing a wrong state.
#include <gtest/gtest.h>

#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"
#include "src/state/state_view.h"
#include "src/workload/assembler.h"
#include "src/workload/contracts.h"

namespace pevm {
namespace {

const Address kOwner = Address::FromId(0xAAA);       // "A" in the paper's example.
const Address kSpenderD = Address::FromId(0xD0D);
const Address kSpenderE = Address::FromId(0xE0E);
const Address kRecipB = Address::FromId(0xB0B);
const Address kRecipC = Address::FromId(0xCCC);
const Address kToken = Address::FromId(0x70CE);

class SsaScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    genesis_.SetCode(kToken, BuildErc20Code());
    genesis_.SetStorage(kToken, Erc20BalanceSlot(kOwner), U256(100));
    genesis_.SetStorage(kToken, Erc20AllowanceSlot(kOwner, kSpenderD), U256(1'000'000));
    genesis_.SetStorage(kToken, Erc20AllowanceSlot(kOwner, kSpenderE), U256(1'000'000));
    for (const Address& a : {kOwner, kSpenderD, kSpenderE, kRecipB, kRecipC}) {
      genesis_.SetBalance(a, U256::Exp(U256(10), U256(18)));
    }
  }

  static Transaction TransferFromTx(const Address& spender, const Address& owner,
                                    const Address& to, uint64_t amount) {
    Transaction tx;
    tx.from = spender;
    tx.to = kToken;
    tx.data = Erc20TransferFromCall(owner, to, U256(amount));
    tx.gas_limit = 200'000;
    tx.gas_price = U256(1);
    return tx;
  }

  struct Spec {
    Receipt receipt;
    ReadSet reads;
    WriteSet writes;
    TxLog log;
  };

  // Speculatively executes `tx` against `base` with SSA logging.
  Spec Speculate(const WorldState& base, const Transaction& tx) {
    StateView view(base);
    SsaBuilder builder;
    Spec s;
    s.receipt = ApplyTransaction(view, block_, tx, &builder);
    if (!s.receipt.valid) {
      builder.MarkNotRedoable();
    }
    s.log = builder.TakeLog();
    s.reads = view.read_set();
    s.writes = view.take_write_set();
    return s;
  }

  // Computes the conflict map of `spec` against the current `state`.
  ConflictMap FindConflicts(const Spec& spec, const WorldState& state) {
    ConflictMap conflicts;
    for (const auto& [key, observed] : spec.reads) {
      U256 current = state.Get(key);
      if (current != observed) {
        conflicts.emplace(key, current);
      }
    }
    return conflicts;
  }

  WorldState genesis_;
  BlockContext block_;
};

TEST_F(SsaScenarioTest, WriteSetReconstructionMatchesView) {
  Transaction tx = TransferFromTx(kSpenderD, kOwner, kRecipB, 10);
  Spec spec = Speculate(genesis_, tx);
  ASSERT_TRUE(spec.receipt.valid);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);
  ASSERT_TRUE(spec.log.redoable);
  WriteSet rebuilt = WriteSetFromLog(spec.log);
  EXPECT_EQ(rebuilt.size(), spec.writes.size());
  for (const auto& [key, value] : spec.writes) {
    ASSERT_TRUE(rebuilt.contains(key)) << key.ToString();
    EXPECT_EQ(rebuilt.at(key), value) << key.ToString();
  }
}

TEST_F(SsaScenarioTest, LogIsSmallFractionOfInstructions) {
  Transaction tx = TransferFromTx(kSpenderD, kOwner, kRecipB, 10);
  Spec spec = Speculate(genesis_, tx);
  // The paper reports logs ~5% of executed instructions (their contracts are
  // solc-compiled and much larger); our hand-assembled token is an order of
  // magnitude leaner, so the bound is proportionally looser — the point is
  // that constant folding drops the bulk of the instruction stream.
  EXPECT_GT(spec.receipt.stats.instructions, 80u);
  EXPECT_LT(spec.log.size() * 3, spec.receipt.stats.instructions);
}

TEST_F(SsaScenarioTest, DirectReadsCoverCommittedKeys) {
  Transaction tx = TransferFromTx(kSpenderD, kOwner, kRecipB, 10);
  Spec spec = Speculate(genesis_, tx);
  // Every read-set key must either have a type-I source entry or be covered
  // by an SSTORE gas recheck — otherwise the redo phase could not repair a
  // conflict on it.
  for (const auto& [key, value] : spec.reads) {
    EXPECT_TRUE(spec.log.direct_reads.contains(key) ||
                spec.log.committed_prior_sstores.contains(key))
        << key.ToString();
  }
}

// The paper's §3.2 scenario: tx1 = transferFrom_D(A, B, v1) and
// tx2 = transferFrom_E(A, C, v2) conflict on balances[A] only; the redo phase
// repairs tx2 instead of re-executing it.
TEST_F(SsaScenarioTest, PaperScenarioRedoRepairsBalanceConflict) {
  Transaction tx1 = TransferFromTx(kSpenderD, kOwner, kRecipB, 10);
  Transaction tx2 = TransferFromTx(kSpenderE, kOwner, kRecipC, 20);

  // Oracle: serial execution.
  WorldState serial = genesis_;
  {
    StateView v1(serial);
    ASSERT_EQ(ApplyTransaction(v1, block_, tx1).status, EvmStatus::kSuccess);
    serial.Apply(v1.write_set());
    StateView v2(serial);
    ASSERT_EQ(ApplyTransaction(v2, block_, tx2).status, EvmStatus::kSuccess);
    serial.Apply(v2.write_set());
  }
  ASSERT_EQ(serial.GetStorage(kToken, Erc20BalanceSlot(kOwner)), U256(70));

  // Parallel: both speculate against genesis; tx1 commits; tx2 conflicts.
  WorldState state = genesis_;
  Spec s1 = Speculate(state, tx1);
  Spec s2 = Speculate(state, tx2);
  state.Apply(s1.writes);

  ConflictMap conflicts = FindConflicts(s2, state);
  ASSERT_FALSE(conflicts.empty());
  // The only conflicting key is balances[A] (the sender ether balances are
  // disjoint).
  ASSERT_TRUE(conflicts.contains(StateKey::Storage(kToken, Erc20BalanceSlot(kOwner))));

  RedoResult redo = RunRedo(s2.log, conflicts,
                            [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  // Only a handful of operations re-execute (paper: ~7 on average).
  EXPECT_LE(redo.reexecuted, 16u);
  EXPECT_GT(redo.reexecuted, 0u);

  state.Apply(redo.write_set);
  // Coinbase fees are deferred in both runs (none credited here), so states
  // must now be identical.
  EXPECT_EQ(state.Digest(), serial.Digest());
  EXPECT_EQ(HexEncode(state.StateRoot()), HexEncode(serial.StateRoot()));
  EXPECT_EQ(state.GetStorage(kToken, Erc20BalanceSlot(kOwner)), U256(70));
  EXPECT_EQ(state.GetStorage(kToken, Erc20BalanceSlot(kRecipC)), U256(20));
}

// Constraint-guard abort: after tx1 drains A, tx2's require(balance >= v)
// takes the other branch — the JUMPI condition guard must fail and the redo
// must abort (paper §3.2 "constraint guards").
TEST_F(SsaScenarioTest, GuardAbortsWhenBalanceBecomesInsufficient) {
  Transaction tx1 = TransferFromTx(kSpenderD, kOwner, kRecipB, 95);
  Transaction tx2 = TransferFromTx(kSpenderE, kOwner, kRecipC, 20);  // 20 > 100-95.

  WorldState state = genesis_;
  Spec s1 = Speculate(state, tx1);
  Spec s2 = Speculate(state, tx2);
  ASSERT_EQ(s2.receipt.status, EvmStatus::kSuccess);  // Speculatively fine.
  state.Apply(s1.writes);

  ConflictMap conflicts = FindConflicts(s2, state);
  ASSERT_FALSE(conflicts.empty());
  RedoResult redo = RunRedo(s2.log, conflicts,
                            [&](const StateKey& k) { return state.Get(k); });
  EXPECT_FALSE(redo.success);
}

TEST_F(SsaScenarioTest, RedoWithEmptyConflictsIsIdentity) {
  Transaction tx = TransferFromTx(kSpenderD, kOwner, kRecipB, 10);
  Spec spec = Speculate(genesis_, tx);
  WorldState state = genesis_;
  RedoResult redo = RunRedo(spec.log, {}, [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  EXPECT_EQ(redo.reexecuted, 0u);
  for (const auto& [key, value] : spec.writes) {
    EXPECT_EQ(redo.write_set.at(key), value);
  }
}

TEST_F(SsaScenarioTest, RevertedTransactionIsNotRedoable) {
  // Amount exceeds the owner's balance: the token reverts.
  Transaction tx = TransferFromTx(kSpenderD, kOwner, kRecipB, 500);
  Spec spec = Speculate(genesis_, tx);
  EXPECT_EQ(spec.receipt.status, EvmStatus::kRevert);
  EXPECT_FALSE(spec.log.redoable);
  RedoResult redo = RunRedo(spec.log, {{StateKey::Balance(kOwner), U256(1)}},
                            [&](const StateKey& k) { return genesis_.Get(k); });
  EXPECT_FALSE(redo.success);
}

TEST_F(SsaScenarioTest, NonceConflictForcesFullReexecution) {
  // Two native transfers from the same sender: tx2 speculates with a stale
  // nonce, is invalid, and the nonce ASSERT_EQ can never be repaired.
  Transaction tx1;
  tx1.from = kSpenderD;
  tx1.to = kRecipB;
  tx1.value = U256(5);
  tx1.gas_limit = 50'000;
  tx1.gas_price = U256(1);
  tx1.nonce = 0;
  Transaction tx2 = tx1;
  tx2.nonce = 1;

  WorldState state = genesis_;
  Spec s1 = Speculate(state, tx1);
  Spec s2 = Speculate(state, tx2);  // Sees nonce 0, expects 1: invalid.
  EXPECT_TRUE(s1.receipt.valid);
  EXPECT_FALSE(s2.receipt.valid);
  EXPECT_FALSE(s2.log.redoable);
  state.Apply(s1.writes);
  ConflictMap conflicts = FindConflicts(s2, state);
  EXPECT_TRUE(conflicts.contains(StateKey::Nonce(kSpenderD)));
  EXPECT_FALSE(RunRedo(s2.log, conflicts, [&](const StateKey& k) {
                 return state.Get(k);
               }).success);
}

// Native ether transfers: the envelope's pseudo-ops (debit/credit/nonce) are
// repaired at operation level just like SLOAD/SSTORE.
TEST_F(SsaScenarioTest, NativeTransferBalanceConflictRepaired) {
  // tx1: D -> B; tx2: B -> C. tx2's upfront read of B's balance goes stale.
  Transaction tx1;
  tx1.from = kSpenderD;
  tx1.to = kRecipB;
  tx1.value = U256(1000);
  tx1.gas_limit = 50'000;
  tx1.gas_price = U256(1);
  Transaction tx2;
  tx2.from = kRecipB;
  tx2.to = kRecipC;
  tx2.value = U256(7);
  tx2.gas_limit = 50'000;
  tx2.gas_price = U256(1);

  WorldState serial = genesis_;
  {
    StateView v1(serial);
    ApplyTransaction(v1, block_, tx1);
    serial.Apply(v1.write_set());
    StateView v2(serial);
    ApplyTransaction(v2, block_, tx2);
    serial.Apply(v2.write_set());
  }

  WorldState state = genesis_;
  Spec s1 = Speculate(state, tx1);
  Spec s2 = Speculate(state, tx2);
  state.Apply(s1.writes);
  ConflictMap conflicts = FindConflicts(s2, state);
  ASSERT_EQ(conflicts.size(), 1u);
  ASSERT_TRUE(conflicts.contains(StateKey::Balance(kRecipB)));
  RedoResult redo = RunRedo(s2.log, conflicts,
                            [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  state.Apply(redo.write_set);
  EXPECT_EQ(state.Digest(), serial.Digest());
}

// SSTORE dynamic-gas constraint: when a conflicting write flips a slot's
// zero-ness, the first SSTORE's recorded gas no longer matches and the redo
// must abort (gas-flow constraints, §5.2.4).
TEST_F(SsaScenarioTest, SstoreGasGuardAbortsOnZeronessFlip) {
  // A bare contract: SSTORE(slot 9, CALLDATALOAD(4)).
  Assembler a;
  a.Push(4).Op(Opcode::kCalldataload).Push(9).Op(Opcode::kSstore).Op(Opcode::kStop);
  Address plain = Address::FromId(0x9999);
  genesis_.SetCode(plain, a.Build());
  // Slot 9 is zero at speculation: the SSTORE charges the 20000 "set" cost.
  Transaction tx;
  tx.from = kSpenderD;
  tx.to = plain;
  tx.data = Bytes(4, 0);
  std::array<uint8_t, 32> amount = U256(77).ToBigEndian();
  tx.data.insert(tx.data.end(), amount.begin(), amount.end());
  tx.gas_limit = 100'000;
  tx.gas_price = U256(1);

  Spec spec = Speculate(genesis_, tx);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);
  ASSERT_TRUE(spec.log.redoable);

  // Another transaction committed 5 into slot 9: the store would now be a
  // 5000-gas reset, changing the fee -> redo must refuse.
  StateKey slot9 = StateKey::Storage(plain, U256(9));
  ConflictMap conflicts{{slot9, U256(5)}};
  WorldState state = genesis_;
  state.Set(slot9, U256(5));
  EXPECT_FALSE(RunRedo(spec.log, conflicts, [&](const StateKey& k) {
                 return state.Get(k);
               }).success);

  // A conflict that keeps the slot zero... cannot exist (values equal means
  // no conflict), but a nonzero->nonzero flip on a reset store is fine:
  // rebuild with slot 9 pre-set so the speculation charges 5000.
  WorldState base2 = genesis_;
  base2.SetStorage(plain, U256(9), U256(3));
  Spec spec2 = Speculate(base2, tx);
  ASSERT_TRUE(spec2.log.redoable);
  WorldState state2 = base2;
  state2.Set(slot9, U256(4));  // Still nonzero: gas unchanged.
  EXPECT_TRUE(RunRedo(spec2.log, {{slot9, U256(4)}}, [&](const StateKey& k) {
                return state2.Get(k);
              }).success);
}

// Data flows through memory and SHA3: a conflicting SLOAD result feeds an
// MSTORE, is hashed, and the hash picks the target slot. The slot address
// would change -> the address guard must abort the redo.
TEST_F(SsaScenarioTest, AddressGuardAbortsWhenSlotDerivedFromConflict) {
  // code: v = SLOAD(0); MSTORE(0, v); h = SHA3(0, 32); SSTORE(h, 1).
  Assembler a;
  a.Push(0).Op(Opcode::kSload);
  a.Push(0).Op(Opcode::kMstore);
  a.Push(0x20).Push(0).Op(Opcode::kSha3);
  a.Push(1).Op(Opcode::kSwap1).Op(Opcode::kSstore);
  a.Op(Opcode::kStop);
  Address hasher = Address::FromId(0x8888);
  genesis_.SetCode(hasher, a.Build());
  genesis_.SetStorage(hasher, U256(0), U256(11));

  Transaction tx;
  tx.from = kSpenderD;
  tx.to = hasher;
  tx.gas_limit = 200'000;
  tx.gas_price = U256(1);

  Spec spec = Speculate(genesis_, tx);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);
  ASSERT_TRUE(spec.log.redoable);

  StateKey slot0 = StateKey::Storage(hasher, U256(0));
  WorldState state = genesis_;
  state.Set(slot0, U256(12));
  // slot = keccak(12) != keccak(11): the SSTORE's guarded slot operand
  // changes -> abort.
  EXPECT_FALSE(RunRedo(spec.log, {{slot0, U256(12)}}, [&](const StateKey& k) {
                 return state.Get(k);
               }).success);
}

// Data flows through memory without changing any address: the redo must
// propagate the patched value through MSTORE -> MLOAD -> SSTORE.
TEST_F(SsaScenarioTest, MemoryChainRepairedByRedo) {
  // code: v = SLOAD(0); MSTORE(0x40, v); w = MLOAD(0x40); SSTORE(1, w+5).
  Assembler a;
  a.Push(0).Op(Opcode::kSload);
  a.Push(0x40).Op(Opcode::kMstore);
  a.Push(0x40).Op(Opcode::kMload);
  a.Push(5).Op(Opcode::kAdd);
  a.Push(1).Op(Opcode::kSstore);
  a.Op(Opcode::kStop);
  Address chain = Address::FromId(0x7777);
  genesis_.SetCode(chain, a.Build());
  genesis_.SetStorage(chain, U256(0), U256(100));

  Transaction tx;
  tx.from = kSpenderD;
  tx.to = chain;
  tx.gas_limit = 200'000;
  tx.gas_price = U256(1);

  Spec spec = Speculate(genesis_, tx);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);
  StateKey slot1 = StateKey::Storage(chain, U256(1));
  ASSERT_EQ(spec.writes.at(slot1), U256(105));

  StateKey slot0 = StateKey::Storage(chain, U256(0));
  WorldState state = genesis_;
  state.Set(slot0, U256(200));
  RedoResult redo = RunRedo(spec.log, {{slot0, U256(200)}},
                            [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  EXPECT_EQ(redo.write_set.at(slot1), U256(205));
}

// Type-II SLOAD: a read of a slot written earlier in the same transaction
// forwards the (repaired) in-transaction value, not the committed one.
TEST_F(SsaScenarioTest, TypeTwoSloadForwardsRepairedWrite) {
  // code: v = SLOAD(0); SSTORE(1, v); w = SLOAD(1); SSTORE(2, w*2).
  Assembler a;
  a.Push(0).Op(Opcode::kSload);
  a.Push(1).Op(Opcode::kSstore);
  a.Push(1).Op(Opcode::kSload);
  a.Push(2).Op(Opcode::kMul);
  a.Push(2).Op(Opcode::kSstore);
  a.Op(Opcode::kStop);
  Address c = Address::FromId(0x6666);
  genesis_.SetCode(c, a.Build());
  genesis_.SetStorage(c, U256(0), U256(21));

  Transaction tx;
  tx.from = kSpenderD;
  tx.to = c;
  tx.gas_limit = 200'000;
  tx.gas_price = U256(1);
  Spec spec = Speculate(genesis_, tx);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);
  ASSERT_EQ(spec.writes.at(StateKey::Storage(c, U256(2))), U256(42));

  StateKey slot0 = StateKey::Storage(c, U256(0));
  WorldState state = genesis_;
  state.Set(slot0, U256(50));
  RedoResult redo = RunRedo(spec.log, {{slot0, U256(50)}},
                            [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  EXPECT_EQ(redo.write_set.at(StateKey::Storage(c, U256(1))), U256(50));
  EXPECT_EQ(redo.write_set.at(StateKey::Storage(c, U256(2))), U256(100));
}

}  // namespace
}  // namespace pevm
