// Durability battery for the KV-backed chain runner (src/chain + src/kv).
//
// The property under test (the issue's acceptance bar): after an unclean stop
// at ANY byte — including a torn final record — reopening the store recovers
// a (block count, state root) pair bit-identical to a from-scratch serial
// replay of exactly that committed prefix, for every executor and OS thread
// count; and a runner reopened on the directory resumes from that durable
// head and produces the same roots the uninterrupted stream would have.
//
// Failure is simulated two ways: dropping the runner without draining
// (Abort — an unclean stop at a block boundary) and truncating the tail
// segment file at a random byte (a torn write). fsync cannot make a
// difference under either (the process survives), which is exactly why the
// tests can run it off for speed without weakening the recovery property.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "src/chain/chain_runner.h"
#include "src/chain/node_store.h"
#include "src/kv/kv_store.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

namespace fs = std::filesystem;

constexpr ExecutorKind kAllExecutors[] = {
    ExecutorKind::kSerial,   ExecutorKind::kTwoPhaseLocking, ExecutorKind::kOcc,
    ExecutorKind::kBlockStm, ExecutorKind::kParallelEvm,
};

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.transactions_per_block = 48;
  config.users = 300;
  config.tokens = 6;
  config.pools = 3;
  config.funds = 2;
  return config;
}

struct Stream {
  WorldState genesis;
  std::vector<Block> blocks;
  std::vector<Hash256> oracle_roots;  // Serial replay, from-scratch roots.
};

Stream MakeStream(uint64_t seed, int blocks) {
  WorkloadGenerator gen(SmallConfig(seed));
  Stream stream;
  stream.genesis = gen.MakeGenesis();
  WorldState state = stream.genesis;
  std::unique_ptr<Executor> oracle = MakeExecutor(ExecutorKind::kSerial, ExecOptions{});
  for (int b = 0; b < blocks; ++b) {
    stream.blocks.push_back(gen.MakeBlock());
    oracle->Execute(stream.blocks.back(), state);
    stream.oracle_roots.push_back(state.StateRoot());
  }
  return stream;
}

// The root a prefix of `committed` blocks must recover to.
Hash256 PrefixRoot(const Stream& stream, uint64_t committed) {
  return committed == 0 ? stream.genesis.StateRoot()
                        : stream.oracle_roots[static_cast<size_t>(committed) - 1];
}

class RecoveryDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("rec_" + std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Fsync off: these tests kill the process never, only the store, so sync
  // cannot affect recovery and would only slow the battery down. The one
  // fsync-on case lives in ChainPersistenceTest.FsyncAccounting.
  ChainOptions KvChainOptions(const std::string& dir) {
    ChainOptions options;
    options.persist = PersistMode::kKv;
    options.kv_dir = dir;
    options.kv.fsync = false;
    options.kv.background_compaction = false;  // Keep segment files inert for surgery.
    options.kv.segment_bytes = 64u << 10;      // Force rotation so tails span segments.
    return options;
  }

  fs::path dir_;
};

using ChainPersistenceTest = RecoveryDirTest;
using ChainResumeTest = RecoveryDirTest;
using CrashRecoveryPropertyTest = RecoveryDirTest;

// --- Tentpole wiring: durable roots across every executor and thread count.

TEST_F(ChainPersistenceTest, KvRootsBitIdenticalAcrossExecutorsAndThreads) {
  Stream stream = MakeStream(7100, 3);
  for (ExecutorKind kind : kAllExecutors) {
    for (int os_threads : {1, 4, 16}) {
      SCOPED_TRACE(testing::Message()
                   << ExecutorKindName(kind) << " os_threads=" << os_threads);
      fs::path dir = dir_ / (std::string(ExecutorKindName(kind)) + "_" +
                             std::to_string(os_threads));
      ChainOptions options = KvChainOptions(dir.string());
      options.executor = kind;
      options.exec.os_threads = os_threads;
      ChainRunner runner(options, stream.genesis);
      for (const Block& block : stream.blocks) {
        ASSERT_TRUE(runner.Submit(block));
      }
      ChainReport report = runner.Finish();
      ASSERT_EQ(report.blocks_committed, stream.blocks.size());
      for (size_t b = 0; b < stream.oracle_roots.size(); ++b) {
        ASSERT_EQ(HexEncode(report.roots[b]), HexEncode(stream.oracle_roots[b]))
            << "block " << b;
      }
      // Every block carried durable freight.
      ASSERT_EQ(report.durability.size(), stream.blocks.size());
      for (const BlockDurability& d : report.durability) {
        EXPECT_GT(d.bytes_appended, 0u);
        EXPECT_GT(d.nodes_written, 0u);
      }
      EXPECT_GT(report.kv_bytes_appended, 0u);
    }
  }
}

// The in-memory NodeStore is the byte-accounting oracle: it mirrors the KV
// framing arithmetic without I/O, so per-block bytes_appended must agree
// exactly between the two persist modes.
TEST_F(ChainPersistenceTest, InMemoryStoreMirrorsKvByteAccounting) {
  Stream stream = MakeStream(7200, 4);
  auto run = [&](PersistMode mode) {
    ChainOptions options = KvChainOptions((dir_ / "kv").string());
    options.persist = mode;
    ChainRunner runner(options, stream.genesis);
    for (const Block& block : stream.blocks) {
      EXPECT_TRUE(runner.Submit(block));
    }
    return runner.Finish();
  };
  ChainReport mem = run(PersistMode::kInMemory);
  ChainReport kv = run(PersistMode::kKv);
  ASSERT_EQ(mem.durability.size(), kv.durability.size());
  for (size_t b = 0; b < mem.durability.size(); ++b) {
    EXPECT_EQ(mem.durability[b].bytes_appended, kv.durability[b].bytes_appended)
        << "block " << b;
    EXPECT_EQ(mem.durability[b].nodes_written, kv.durability[b].nodes_written) << "block " << b;
    EXPECT_EQ(kv.durability[b].fsyncs, 0u);  // fsync off in this battery.
  }
  EXPECT_EQ(mem.kv_bytes_appended, kv.kv_bytes_appended);
  EXPECT_EQ(mem.kv_fsyncs, 0u);
}

TEST_F(ChainPersistenceTest, FsyncAccounting) {
  Stream stream = MakeStream(7300, 3);
  ChainOptions options = KvChainOptions(dir_.string());
  options.kv.fsync = true;
  ChainRunner runner(options, stream.genesis);
  for (const Block& block : stream.blocks) {
    ASSERT_TRUE(runner.Submit(block));
  }
  ChainReport report = runner.Finish();
  ASSERT_EQ(report.blocks_committed, stream.blocks.size());
  // Single committer thread: every block batch pays exactly one fsync, plus
  // one for the genesis seal.
  for (const BlockDurability& d : report.durability) {
    EXPECT_EQ(d.fsyncs, 1u);
    EXPECT_GE(d.persist_ns, d.sync_ns);
  }
  EXPECT_EQ(report.kv_fsyncs, stream.blocks.size() + 1);
}

// --- Multi-block batched commits: fsyncs amortize, accounting stays honest.

TEST_F(ChainPersistenceTest, BatchedCommitsAmortizeFsyncsAndKeepAccountingHonest) {
  Stream stream = MakeStream(7700, 7);
  ChainOptions options = KvChainOptions(dir_.string());
  options.kv.fsync = true;
  options.commit.batch_blocks = 3;
  options.commit.os_threads = 4;
  ChainRunner runner(options, stream.genesis);
  for (const Block& block : stream.blocks) {
    ASSERT_TRUE(runner.Submit(block));
  }
  ChainReport report = runner.Finish();
  ASSERT_EQ(report.blocks_committed, stream.blocks.size());
  for (size_t b = 0; b < stream.oracle_roots.size(); ++b) {
    ASSERT_EQ(HexEncode(report.roots[b]), HexEncode(stream.oracle_roots[b])) << "block " << b;
  }
  EXPECT_EQ(report.commit_batches, 3u);  // 3 + 3 + 1 (drain flush).
  // Seal freight (fsync, log bytes, archived nodes) lands on each batch's
  // last block; earlier members carry none — but every block still records
  // its own honest enqueue→durable latency.
  for (size_t b = 0; b < report.durability.size(); ++b) {
    const BlockDurability& d = report.durability[b];
    const bool batch_final = b == 2 || b == 5 || b == 6;
    EXPECT_EQ(d.fsyncs, batch_final ? 1u : 0u) << "block " << b;
    EXPECT_EQ(d.bytes_appended > 0, batch_final) << "block " << b;
    EXPECT_EQ(d.nodes_written > 0, batch_final) << "block " << b;
    EXPECT_GT(d.queue_to_durable_ns, 0u) << "block " << b;
  }
  EXPECT_EQ(report.kv_fsyncs, 3u + 1u);  // One per batch plus the genesis seal.
}

TEST_F(ChainPersistenceTest, InMemoryStoreMirrorsKvByteAccountingUnderBatching) {
  Stream stream = MakeStream(7800, 5);
  auto run = [&](PersistMode mode) {
    ChainOptions options = KvChainOptions((dir_ / "kv").string());
    options.persist = mode;
    options.commit.batch_blocks = 2;
    ChainRunner runner(options, stream.genesis);
    for (const Block& block : stream.blocks) {
      EXPECT_TRUE(runner.Submit(block));
    }
    return runner.Finish();
  };
  ChainReport mem = run(PersistMode::kInMemory);
  ChainReport kv = run(PersistMode::kKv);
  ASSERT_EQ(mem.durability.size(), kv.durability.size());
  for (size_t b = 0; b < mem.durability.size(); ++b) {
    EXPECT_EQ(mem.durability[b].bytes_appended, kv.durability[b].bytes_appended)
        << "block " << b;
    EXPECT_EQ(mem.durability[b].nodes_written, kv.durability[b].nodes_written) << "block " << b;
  }
  EXPECT_EQ(mem.kv_bytes_appended, kv.kv_bytes_appended);
  EXPECT_EQ(mem.commit_batches, kv.commit_batches);
}

// --- Resume: reopening a cleanly finished directory continues the stream.

TEST_F(ChainResumeTest, ReopenResumesFromDurableHeadAndContinues) {
  Stream stream = MakeStream(7400, 6);
  ChainOptions options = KvChainOptions(dir_.string());
  {
    ChainRunner runner(options, stream.genesis);
    for (size_t b = 0; b < 3; ++b) {
      ASSERT_TRUE(runner.Submit(stream.blocks[b]));
    }
    ChainReport report = runner.Finish();
    ASSERT_EQ(report.blocks_committed, 3u);
    EXPECT_EQ(report.blocks_resumed, 0u);
  }
  {
    // The genesis argument is ignored on resume; pass an empty state to prove
    // the committed WorldState really comes from the store.
    ChainRunner runner(options, WorldState{});
    EXPECT_EQ(runner.recovered_blocks(), 3u);
    for (size_t b = 3; b < stream.blocks.size(); ++b) {
      ASSERT_TRUE(runner.Submit(stream.blocks[b]));
    }
    ChainReport report = runner.Finish();
    EXPECT_EQ(report.blocks_resumed, 3u);
    ASSERT_EQ(report.blocks_committed, 3u);  // This run's blocks only.
    for (size_t b = 3; b < stream.oracle_roots.size(); ++b) {
      EXPECT_EQ(HexEncode(report.roots[b - 3]), HexEncode(stream.oracle_roots[b]))
          << "block " << b;
    }
  }
  {
    // Third open: the whole stream is durable now.
    ChainRunner runner(options, WorldState{});
    EXPECT_EQ(runner.recovered_blocks(), stream.blocks.size());
    EXPECT_EQ(HexEncode(runner.state().StateRoot()), HexEncode(stream.oracle_roots.back()));
    runner.Finish();
  }
}

TEST_F(ChainResumeTest, AbortLeavesConsistentDurablePrefix) {
  Stream stream = MakeStream(7500, 6);
  ChainOptions options = KvChainOptions(dir_.string());
  uint64_t committed = 0;
  {
    ChainRunner runner(options, stream.genesis);
    for (const Block& block : stream.blocks) {
      if (!runner.Submit(block)) {
        break;
      }
    }
    ChainReport report = runner.Abort();  // Unclean stop at a block boundary.
    committed = report.blocks_committed;
    EXPECT_LE(committed, stream.blocks.size());
  }
  std::string error;
  std::unique_ptr<KvStore> store = KvStore::Open(dir_.string(), KvOptions{.fsync = false}, &error);
  ASSERT_NE(store, nullptr) << error;
  std::optional<RecoveredChain> recovered = RecoverChain(*store);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->blocks_committed, committed);
  EXPECT_EQ(HexEncode(recovered->root), HexEncode(PrefixRoot(stream, committed)));
  // The flat mirror and the manifest agree (this is the cross-check a
  // resuming ChainRunner performs before accepting the store).
  EXPECT_EQ(HexEncode(recovered->state.StateRoot()), HexEncode(recovered->root));
}

// --- The property test: truncate the tail segment at a random byte.

TEST_F(CrashRecoveryPropertyTest, RandomTailTruncationRecoversExactCommittedPrefix) {
  const int kBlocks = 5;
  for (uint64_t seed : {41u, 42u, 43u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    Stream stream = MakeStream(seed, kBlocks);
    fs::path pristine = dir_ / ("pristine_" + std::to_string(seed));
    ChainOptions options = KvChainOptions(pristine.string());
    {
      ChainRunner runner(options, stream.genesis);
      for (const Block& block : stream.blocks) {
        ASSERT_TRUE(runner.Submit(block));
      }
      ChainReport report = runner.Finish();
      ASSERT_EQ(report.blocks_committed, static_cast<uint64_t>(kBlocks));
    }

    std::mt19937_64 rng(seed * 1000003);
    for (int trial = 0; trial < 8; ++trial) {
      SCOPED_TRACE(testing::Message() << "trial=" << trial);
      fs::path work = dir_ / ("work_" + std::to_string(seed));
      fs::remove_all(work);
      fs::copy(pristine, work, fs::copy_options::recursive);

      // Tail segment = highest-numbered file (names are zero-padded ids).
      std::vector<fs::path> segments;
      for (const auto& entry : fs::directory_iterator(work)) {
        if (entry.path().extension() == ".seg") {
          segments.push_back(entry.path());
        }
      }
      ASSERT_FALSE(segments.empty());
      std::sort(segments.begin(), segments.end());
      const fs::path& tail = segments.back();
      const uint64_t size = fs::file_size(tail);
      const uint64_t cut = rng() % size;  // Anywhere, header bytes included.
      fs::resize_file(tail, cut);

      std::string error;
      std::unique_ptr<KvStore> store = KvStore::Open(
          work.string(), KvOptions{.fsync = false, .background_compaction = false}, &error);
      ASSERT_NE(store, nullptr) << error;
      std::optional<RecoveredChain> recovered = RecoverChain(*store);
      uint64_t committed = 0;
      if (!recovered.has_value()) {
        // Only legal when the cut tore the genesis batch itself, which can
        // only happen while it is still in the first (single) segment.
        EXPECT_EQ(segments.size(), 1u);
      } else {
        committed = recovered->blocks_committed;
        EXPECT_LE(committed, static_cast<uint64_t>(kBlocks));
        EXPECT_EQ(HexEncode(recovered->root), HexEncode(PrefixRoot(stream, committed)))
            << "committed=" << committed;
        EXPECT_EQ(HexEncode(recovered->state.StateRoot()), HexEncode(recovered->root));
        ASSERT_EQ(recovered->roots.size(), committed);
        for (uint64_t b = 0; b < committed; ++b) {
          EXPECT_EQ(HexEncode(recovered->roots[b]), HexEncode(stream.oracle_roots[b]));
        }
      }
      store.reset();

      // Strongest form, once per seed: resume a runner on the wounded store
      // and replay the rest of the stream; every root must land exactly where
      // the uninterrupted run's did.
      if (trial == 0) {
        ChainOptions resume = KvChainOptions(work.string());
        ChainRunner runner(resume, stream.genesis);
        ASSERT_EQ(runner.recovered_blocks(), committed);
        for (size_t b = committed; b < stream.blocks.size(); ++b) {
          ASSERT_TRUE(runner.Submit(stream.blocks[b]));
        }
        ChainReport report = runner.Finish();
        ASSERT_EQ(report.blocks_committed, stream.blocks.size() - committed);
        for (size_t b = committed; b < stream.oracle_roots.size(); ++b) {
          EXPECT_EQ(HexEncode(report.roots[b - committed]),
                    HexEncode(stream.oracle_roots[b]))
              << "block " << b;
        }
      }
      fs::remove_all(work);
    }
  }
}

// The durability-lag contract under multi-block batching: the store only
// ever seals at batch boundaries (and the drain flush), so a torn tail can
// roll recovery back ONLY to one of those points — never into the middle of
// a batch — and a runner resumed on the wounded store replays forward to
// roots bit-identical to the uninterrupted serial oracle.
TEST_F(CrashRecoveryPropertyTest, TruncationUnderBatchingRecoversOnBatchBoundaries) {
  const int kBlocks = 7;
  const size_t kBatch = 3;  // Seals after blocks 3, 6 and the drain flush at 7.
  Stream stream = MakeStream(45, kBlocks);
  fs::path pristine = dir_ / "pristine";
  ChainOptions options = KvChainOptions(pristine.string());
  options.commit.batch_blocks = kBatch;
  options.commit.os_threads = 4;
  {
    ChainRunner runner(options, stream.genesis);
    for (const Block& block : stream.blocks) {
      ASSERT_TRUE(runner.Submit(block));
    }
    ChainReport report = runner.Finish();
    ASSERT_EQ(report.blocks_committed, static_cast<uint64_t>(kBlocks));
    ASSERT_EQ(report.commit_batches, 3u);
  }

  std::mt19937_64 rng(997);
  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial=" << trial);
    fs::path work = dir_ / "work";
    fs::remove_all(work);
    fs::copy(pristine, work, fs::copy_options::recursive);

    std::vector<fs::path> segments;
    for (const auto& entry : fs::directory_iterator(work)) {
      if (entry.path().extension() == ".seg") {
        segments.push_back(entry.path());
      }
    }
    ASSERT_FALSE(segments.empty());
    std::sort(segments.begin(), segments.end());
    const fs::path& tail = segments.back();
    const uint64_t size = fs::file_size(tail);
    fs::resize_file(tail, rng() % size);

    std::string error;
    std::unique_ptr<KvStore> store = KvStore::Open(
        work.string(), KvOptions{.fsync = false, .background_compaction = false}, &error);
    ASSERT_NE(store, nullptr) << error;
    std::optional<RecoveredChain> recovered = RecoverChain(*store);
    uint64_t committed = 0;
    if (!recovered.has_value()) {
      EXPECT_EQ(segments.size(), 1u);  // Only a torn genesis batch may do this.
    } else {
      committed = recovered->blocks_committed;
      // The contract's teeth: recovery can land on a batch boundary and
      // nowhere else.
      EXPECT_TRUE(committed == 0 || committed == kBatch || committed == 2 * kBatch ||
                  committed == static_cast<uint64_t>(kBlocks))
          << "committed=" << committed;
      EXPECT_EQ(HexEncode(recovered->root), HexEncode(PrefixRoot(stream, committed)));
      EXPECT_EQ(HexEncode(recovered->state.StateRoot()), HexEncode(recovered->root));
      ASSERT_EQ(recovered->roots.size(), committed);
      for (uint64_t b = 0; b < committed; ++b) {
        EXPECT_EQ(HexEncode(recovered->roots[b]), HexEncode(stream.oracle_roots[b]));
      }
    }
    store.reset();

    // Wounded-store resume, batching still on: the continuation's roots must
    // land exactly where the uninterrupted run's did.
    if (trial < 2) {
      ChainOptions resume = KvChainOptions(work.string());
      resume.commit.batch_blocks = kBatch;
      resume.commit.os_threads = 4;
      ChainRunner runner(resume, stream.genesis);
      ASSERT_EQ(runner.recovered_blocks(), committed);
      for (size_t b = committed; b < stream.blocks.size(); ++b) {
        ASSERT_TRUE(runner.Submit(stream.blocks[b]));
      }
      ChainReport report = runner.Finish();
      ASSERT_EQ(report.blocks_committed, stream.blocks.size() - committed);
      for (size_t b = committed; b < stream.oracle_roots.size(); ++b) {
        EXPECT_EQ(HexEncode(report.roots[b - committed]), HexEncode(stream.oracle_roots[b]))
            << "block " << b;
      }
    }
    fs::remove_all(work);
  }
}

// --- SimStore KV backing: real file reads, unchanged results.

TEST_F(ChainPersistenceTest, KvBackedSimStoreKeepsRootsAndCountersBitIdentical) {
  Stream stream = MakeStream(7600, 4);
  auto run = [&](bool kv_backed) {
    ChainOptions options;
    options.exec.prefetch_depth = 8;
    options.exec.os_threads = 4;
    if (kv_backed) {
      ChainOptions kv = KvChainOptions((dir_ / "backed").string());
      options.persist = kv.persist;
      options.kv_dir = kv.kv_dir;
      options.kv = kv.kv;
      options.kv_backed_sim_store = true;
    }
    ChainRunner runner(options, stream.genesis);
    for (const Block& block : stream.blocks) {
      EXPECT_TRUE(runner.Submit(block));
    }
    uint64_t kv_reads = 0;
    if (kv_backed) {
      ChainReport report = runner.Finish();
      kv_reads = runner.kv_store()->stats().reads;
      EXPECT_GT(kv_reads, 100u);  // Cold reads + warm-ups really hit the file.
      return report;
    }
    return runner.Finish();
  };
  ChainReport simulated = run(false);
  ChainReport backed = run(true);
  ASSERT_EQ(simulated.blocks_committed, backed.blocks_committed);
  for (size_t b = 0; b < simulated.roots.size(); ++b) {
    EXPECT_EQ(HexEncode(simulated.roots[b]), HexEncode(backed.roots[b])) << "block " << b;
  }
  ASSERT_EQ(simulated.block_reports.size(), backed.block_reports.size());
  for (size_t b = 0; b < simulated.block_reports.size(); ++b) {
    const BlockReport& s = simulated.block_reports[b];
    const BlockReport& k = backed.block_reports[b];
    EXPECT_EQ(s.prefetch_hits, k.prefetch_hits) << "block " << b;
    EXPECT_EQ(s.prefetch_misses, k.prefetch_misses) << "block " << b;
    EXPECT_EQ(s.prefetch_wasted, k.prefetch_wasted) << "block " << b;
    EXPECT_EQ(s.makespan_ns, k.makespan_ns) << "block " << b;
  }
}

}  // namespace
}  // namespace pevm
