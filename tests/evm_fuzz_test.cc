// Robustness fuzzing: the interpreter must never crash, hang, overrun gas,
// or behave non-deterministically on arbitrary bytecode — and the SSA
// builder must tolerate whatever the interpreter survives.
#include <gtest/gtest.h>

#include <random>

#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/evm/host.h"
#include "src/evm/interpreter.h"
#include "src/state/state_view.h"

namespace pevm {
namespace {

const Address kSelf = Address::FromId(0xF022);
const Address kCaller = Address::FromId(0xCA11);

Bytes RandomCode(std::mt19937_64& rng, size_t max_len) {
  size_t len = 1 + rng() % max_len;
  Bytes code(len);
  for (auto& b : code) {
    // Bias toward defined opcodes so executions get past the first byte.
    switch (rng() % 4) {
      case 0:
        b = static_cast<uint8_t>(0x60 + rng() % 16);  // Small pushes.
        break;
      case 1:
        b = static_cast<uint8_t>(rng() % 0x20);  // Arithmetic block.
        break;
      case 2:
        b = static_cast<uint8_t>(0x50 + rng() % 16);  // Memory/storage/flow.
        break;
      default:
        b = static_cast<uint8_t>(rng() & 0xff);  // Anything.
        break;
    }
  }
  return code;
}

struct FuzzOutcome {
  EvmStatus status;
  int64_t gas_left;
  Bytes output;
  uint64_t state_digest;
  size_t log_entries;
};

FuzzOutcome RunOnce(const Bytes& code, uint64_t data_seed) {
  WorldState world;
  world.SetCode(kSelf, code);
  world.SetBalance(kSelf, U256(1'000'000));
  world.SetStorage(kSelf, U256(0), U256(42));
  StateView view(world);
  StateViewHost host(view);
  BlockContext block;
  TxContext tx{kCaller, U256(1)};
  SsaBuilder builder;
  Interpreter interp(host, block, tx, &builder);
  Message msg;
  msg.code_address = kSelf;
  msg.storage_address = kSelf;
  msg.caller = kCaller;
  msg.gas = 200'000;
  std::mt19937_64 rng(data_seed);
  msg.data.resize(rng() % 68);
  for (auto& b : msg.data) {
    b = static_cast<uint8_t>(rng() & 0xff);
  }
  EvmResult r = interp.Execute(msg);
  TxLog log = builder.TakeLog();
  FuzzOutcome out;
  out.status = r.status;
  out.gas_left = r.gas_left;
  out.output = std::move(r.output);
  WorldState post = world;
  post.Apply(view.write_set());
  out.state_digest = post.Digest();
  out.log_entries = log.size();
  return out;
}

class EvmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvmFuzzTest, RandomBytecodeNeverViolatesInvariants) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    Bytes code = RandomCode(rng, 96);
    uint64_t data_seed = rng();
    FuzzOutcome a = RunOnce(code, data_seed);
    // Gas can never go negative or exceed the budget.
    ASSERT_GE(a.gas_left, 0) << HexEncode(code);
    ASSERT_LE(a.gas_left, 200'000) << HexEncode(code);
    // Exceptional halts consume everything.
    if (IsExceptionalHalt(a.status)) {
      ASSERT_EQ(a.gas_left, 0) << HexEncode(code);
    }
    // Determinism: identical runs produce identical results, state and logs.
    FuzzOutcome b = RunOnce(code, data_seed);
    ASSERT_EQ(a.status, b.status) << HexEncode(code);
    ASSERT_EQ(a.gas_left, b.gas_left) << HexEncode(code);
    ASSERT_EQ(a.output, b.output) << HexEncode(code);
    ASSERT_EQ(a.state_digest, b.state_digest) << HexEncode(code);
    ASSERT_EQ(a.log_entries, b.log_entries) << HexEncode(code);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmFuzzTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Deeper structured fuzz: random but *valid-ish* storage programs, executed
// with the SSA builder, then redone against random perturbations — the log
// must either repair to exactly the re-executed result or decline.
TEST(EvmFuzzTest, StructuredStoragePrograms) {
  std::mt19937_64 rng(0xF00D);
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // Program: a chain of SLOAD/arithmetic/SSTORE over slots 0..3.
    Bytes code;
    std::mt19937_64 prog_rng(rng());
    auto push1 = [&](uint8_t v) {
      code.push_back(0x60);
      code.push_back(v);
    };
    int ops = 2 + static_cast<int>(prog_rng() % 6);
    for (int i = 0; i < ops; ++i) {
      push1(static_cast<uint8_t>(prog_rng() % 4));  // Slot.
      code.push_back(0x54);                         // SLOAD.
      push1(static_cast<uint8_t>(1 + prog_rng() % 9));
      code.push_back(static_cast<uint8_t>(prog_rng() % 2 == 0 ? 0x01 : 0x03));  // ADD/SUB.
      push1(static_cast<uint8_t>(prog_rng() % 4));  // Target slot.
      code.push_back(0x55);                         // SSTORE.
    }
    code.push_back(0x00);  // STOP.

    WorldState world;
    world.SetCode(kSelf, code);
    for (uint64_t s = 0; s < 4; ++s) {
      world.SetStorage(kSelf, U256(s), U256(100 + s * 10));
    }

    StateView view(world);
    StateViewHost host(view);
    BlockContext block;
    TxContext tx{kCaller, U256(1)};
    SsaBuilder builder;
    Interpreter interp(host, block, tx, &builder);
    Message msg;
    msg.code_address = kSelf;
    msg.storage_address = kSelf;
    msg.caller = kCaller;
    msg.gas = 1'000'000;
    EvmResult r = interp.Execute(msg);
    ASSERT_EQ(r.status, EvmStatus::kSuccess);
    TxLog log = builder.TakeLog();

    // Perturb one slot and redo.
    WorldState perturbed = world;
    StateKey key = StateKey::Storage(kSelf, U256(prog_rng() % 4));
    U256 new_value(500 + prog_rng() % 100);
    perturbed.Set(key, new_value);
    ConflictMap conflicts{{key, new_value}};
    RedoResult redo =
        RunRedo(log, conflicts, [&](const StateKey& k) { return perturbed.Get(k); });

    // Oracle: full re-execution against the perturbed state.
    StateView oracle_view(perturbed);
    StateViewHost oracle_host(oracle_view);
    Interpreter oracle_interp(oracle_host, block, tx);
    ASSERT_EQ(oracle_interp.Execute(msg).status, EvmStatus::kSuccess);

    if (!redo.success) {
      continue;  // Declining is always sound (gas zero-ness flips etc.).
    }
    ++checked;
    const WriteSet& oracle_writes = oracle_view.write_set();
    ASSERT_EQ(redo.write_set.size(), oracle_writes.size()) << HexEncode(code);
    for (const auto& [k, v] : oracle_writes) {
      ASSERT_EQ(redo.write_set.at(k), v) << HexEncode(code) << " key " << k.ToString();
    }
  }
  EXPECT_GT(checked, 50);  // The property must not be vacuous.
}

}  // namespace
}  // namespace pevm
