// Unit tests for the virtual-time substrate: the cost model, the greedy list
// scheduler, and the state cache.
#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/sim/cost_model.h"

namespace pevm {
namespace {

TEST(ListScheduleTest, SingleThreadSumsDurations) {
  ScheduleResult r = ListSchedule({100, 200, 300}, 1, 0);
  EXPECT_EQ(r.finish, (std::vector<uint64_t>{100, 300, 600}));
  EXPECT_EQ(r.makespan, 600u);
}

TEST(ListScheduleTest, TwoThreadsBalanceLoad) {
  ScheduleResult r = ListSchedule({100, 100, 100, 100}, 2, 0);
  EXPECT_EQ(r.makespan, 200u);
  EXPECT_EQ(r.finish[0], 100u);
  EXPECT_EQ(r.finish[1], 100u);
  EXPECT_EQ(r.finish[2], 200u);
  EXPECT_EQ(r.finish[3], 200u);
}

TEST(ListScheduleTest, GreedyPicksLeastLoadedWorker) {
  // A long task on one worker; short tasks flow to the other.
  ScheduleResult r = ListSchedule({1000, 10, 10, 10}, 2, 0);
  EXPECT_EQ(r.finish[0], 1000u);
  EXPECT_EQ(r.finish[1], 10u);
  EXPECT_EQ(r.finish[2], 20u);
  EXPECT_EQ(r.finish[3], 30u);
  EXPECT_EQ(r.makespan, 1000u);
}

TEST(ListScheduleTest, DispatchOverheadCharged) {
  ScheduleResult r = ListSchedule({100}, 4, 25);
  EXPECT_EQ(r.finish[0], 125u);
}

TEST(ListScheduleTest, EmptyAndDegenerateInputs) {
  EXPECT_EQ(ListSchedule({}, 4, 0).makespan, 0u);
  EXPECT_EQ(ListSchedule({5}, 0, 0).makespan, 5u);  // Clamped to 1 thread.
}

TEST(ListScheduleTest, MakespanBounds) {
  // Classic list-scheduling bounds: max(duration) <= makespan <= sum.
  std::vector<uint64_t> durations = {17, 2, 90, 33, 4, 61, 8, 12};
  uint64_t sum = 0;
  uint64_t longest = 0;
  for (uint64_t d : durations) {
    sum += d;
    longest = std::max(longest, d);
  }
  for (int threads : {1, 2, 3, 8}) {
    ScheduleResult r = ListSchedule(durations, threads, 0);
    EXPECT_GE(r.makespan, longest);
    EXPECT_GE(r.makespan, sum / static_cast<uint64_t>(threads));
    EXPECT_LE(r.makespan, sum);
  }
}

TEST(CostModelTest, ExecutionCostComponents) {
  CostConfig config;
  CostModel model(config);
  ExecStats stats;
  stats.gas_used = 21000;  // Envelope only: no compute component.
  uint64_t base = model.ExecutionCost(stats, 0, 0, false);
  EXPECT_EQ(base, config.per_tx_ns);
  EXPECT_EQ(model.ExecutionCost(stats, 2, 3, false),
            config.per_tx_ns + 2 * config.cold_read_ns + 3 * config.warm_read_ns);
}

TEST(CostModelTest, StorageGasExcludedFromCompute) {
  CostConfig config;
  CostModel model(config);
  ExecStats stats;
  stats.gas_used = 21000 + 800 * 4 + 40000 + 10000;  // 4 SLOADs + SSTOREs + 10k compute.
  stats.sloads = 4;
  stats.sstore_gas = 40000;
  uint64_t cost = model.ExecutionCost(stats, 0, 0, false);
  EXPECT_EQ(cost, static_cast<uint64_t>(10000 * config.ns_per_gas) + config.per_tx_ns);
}

TEST(CostModelTest, SsaOverheadAppliesToComputeOnly) {
  CostConfig config;
  CostModel model(config);
  ExecStats stats;
  stats.gas_used = 21000 + 100000;
  uint64_t plain = model.ExecutionCost(stats, 0, 0, false);
  uint64_t with_ssa = model.ExecutionCost(stats, 0, 0, true);
  double overhead = static_cast<double>(with_ssa - plain) /
                    static_cast<double>(plain - config.per_tx_ns);
  EXPECT_NEAR(overhead, config.ssa_overhead, 0.001);
}

TEST(CostModelTest, RedoCheaperThanReexecution) {
  // The economic core of the paper: repairing a handful of entries must be
  // much cheaper than re-executing the transaction.
  CostConfig config;
  CostModel model(config);
  ExecStats stats;
  stats.gas_used = 60000;
  stats.sloads = 5;
  stats.sstore_gas = 25000;
  uint64_t reexec = model.ExecutionCost(stats, 0, 5, false);
  uint64_t redo = model.RedoCost(/*visited=*/10, /*reexecuted=*/7, /*conflict_keys=*/1);
  EXPECT_LT(redo * 2, reexec);
}

TEST(StateCacheTest, ColdThenWarm) {
  StateCache cache(/*all_warm=*/false);
  ReadSet reads;
  reads[StateKey::Balance(Address::FromId(1))] = U256(1);
  reads[StateKey::Balance(Address::FromId(2))] = U256(2);
  EXPECT_EQ(cache.Touch(reads), 2u);
  EXPECT_EQ(cache.Touch(reads), 0u);  // Now resident.
  reads[StateKey::Balance(Address::FromId(3))] = U256(3);
  EXPECT_EQ(cache.Touch(reads), 1u);
}

TEST(StateCacheTest, PrefetchedCacheNeverMisses) {
  StateCache cache(/*all_warm=*/true);
  ReadSet reads;
  reads[StateKey::Balance(Address::FromId(1))] = U256(1);
  EXPECT_EQ(cache.Touch(reads), 0u);
}

}  // namespace
}  // namespace pevm
