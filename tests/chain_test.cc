// Chain-runner battery: the streaming three-stage pipeline must be invisible
// to results. Per-block state roots out of the incremental committer are
// bit-identical to a serial per-block from-scratch StateRoot() recomputation
// for every executor, OS thread count, queue depth and commit-overlap
// setting; virtual makespans match direct (non-chained) execution; and
// shutdown — graceful or aborted mid-stream — always leaves a consistent
// committed prefix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "src/chain/chain_runner.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

constexpr ExecutorKind kAllExecutors[] = {
    ExecutorKind::kSerial,   ExecutorKind::kTwoPhaseLocking, ExecutorKind::kOcc,
    ExecutorKind::kBlockStm, ExecutorKind::kParallelEvm,
};

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.transactions_per_block = 48;
  config.users = 300;
  config.tokens = 6;
  config.pools = 3;
  config.funds = 2;
  return config;
}

struct Stream {
  WorldState genesis;
  std::vector<Block> blocks;
  std::vector<Hash256> oracle_roots;  // Serial replay, from-scratch roots.
};

// The oracle: execute the stream one block at a time with the serial executor
// and recompute the full state root from scratch after every block.
Stream MakeStream(uint64_t seed, int blocks) {
  WorkloadGenerator gen(SmallConfig(seed));
  Stream stream;
  stream.genesis = gen.MakeGenesis();
  WorldState state = stream.genesis;
  std::unique_ptr<Executor> oracle = MakeExecutor(ExecutorKind::kSerial, ExecOptions{});
  for (int b = 0; b < blocks; ++b) {
    stream.blocks.push_back(gen.MakeBlock());
    oracle->Execute(stream.blocks.back(), state);
    stream.oracle_roots.push_back(state.StateRoot());
  }
  return stream;
}

void ExpectRootsMatch(const ChainReport& report, const Stream& stream) {
  ASSERT_EQ(report.roots.size(), stream.oracle_roots.size());
  for (size_t b = 0; b < stream.oracle_roots.size(); ++b) {
    ASSERT_EQ(HexEncode(report.roots[b]), HexEncode(stream.oracle_roots[b])) << "block " << b;
  }
  EXPECT_EQ(HexEncode(report.final_root), HexEncode(stream.oracle_roots.back()));
}

TEST(ChainRunnerTest, RootsBitIdenticalAcrossExecutorsThreadsBatchesAndQueueDepths) {
  Stream stream = MakeStream(9100, 5);
  for (ExecutorKind kind : kAllExecutors) {
    for (int os_threads : {1, 4, 16}) {
      for (bool overlap : {true, false}) {
        for (size_t batch : {size_t{1}, size_t{4}}) {
          SCOPED_TRACE(testing::Message()
                       << ExecutorKindName(kind) << " os_threads=" << os_threads
                       << " overlap=" << overlap << " batch=" << batch);
          ChainOptions options;
          options.executor = kind;
          options.exec.os_threads = os_threads;
          options.overlap_commit = overlap;
          // Rotate queue depth with thread count so a depth-1 (fully
          // backpressured) pipeline is covered too.
          options.queue_depth = os_threads == 4 ? 1 : 4;
          // The committer re-roots shard-parallel at the same width the
          // executor runs; batch 4 folds blocks into multi-block seals (with
          // the accounting store attached so the seal path is exercised).
          options.commit.os_threads = os_threads;
          options.commit.batch_blocks = batch;
          options.persist = batch == 1 ? PersistMode::kNone : PersistMode::kInMemory;
          ChainRunner runner(options, stream.genesis);
          for (const Block& block : stream.blocks) {
            ASSERT_TRUE(runner.Submit(block));
          }
          ChainReport report = runner.Finish();
          EXPECT_FALSE(report.aborted);
          EXPECT_EQ(report.blocks_submitted, stream.blocks.size());
          EXPECT_EQ(report.blocks_executed, stream.blocks.size());
          ASSERT_EQ(report.blocks_committed, stream.blocks.size());
          // 5 blocks seal as 5 singleton batches or 4+1 (drain flush).
          EXPECT_EQ(report.commit_batches, batch == 1 ? 5u : 2u);
          ExpectRootsMatch(report, stream);
        }
      }
    }
  }
}

TEST(ChainRunnerTest, VirtualMakespansMatchDirectExecution) {
  Stream stream = MakeStream(9200, 4);
  for (ExecutorKind kind : kAllExecutors) {
    SCOPED_TRACE(ExecutorKindName(kind));
    // Direct, non-pipelined execution is the virtual-time reference.
    std::unique_ptr<Executor> direct = MakeExecutor(kind, ExecOptions{});
    WorldState state = stream.genesis;
    std::vector<uint64_t> direct_makespans;
    for (const Block& block : stream.blocks) {
      direct_makespans.push_back(direct->Execute(block, state).makespan_ns);
    }
    for (int os_threads : {1, 16}) {
      SCOPED_TRACE(testing::Message() << "os_threads=" << os_threads);
      ChainOptions options;
      options.executor = kind;
      options.exec.os_threads = os_threads;
      ChainRunner runner(options, stream.genesis);
      for (const Block& block : stream.blocks) {
        ASSERT_TRUE(runner.Submit(block));
      }
      ChainReport report = runner.Finish();
      ASSERT_EQ(report.block_reports.size(), direct_makespans.size());
      for (size_t b = 0; b < direct_makespans.size(); ++b) {
        EXPECT_EQ(report.block_reports[b].makespan_ns, direct_makespans[b]) << "block " << b;
      }
    }
  }
}

TEST(ChainRunnerTest, StorageSimAndCrossBlockPrefetchKeepRootsIdentical) {
  Stream stream = MakeStream(9300, 4);
  ChainOptions options;
  options.executor = ExecutorKind::kParallelEvm;
  options.exec.os_threads = 4;
  options.exec.prefetch_depth = 4;
  options.exec.storage.cold_read_ns = 2'000;
  options.exec.storage.warm_read_ns = 200;
  options.exec.storage.batch_base_ns = 4'000;
  options.exec.storage.batch_key_ns = 100;
  ChainRunner runner(options, stream.genesis);
  for (const Block& block : stream.blocks) {
    ASSERT_TRUE(runner.Submit(block));
  }
  ChainReport report = runner.Finish();
  ASSERT_EQ(report.blocks_committed, stream.blocks.size());
  ExpectRootsMatch(report, stream);
  // The warm stage actually warmed something.
  EXPECT_EQ(report.warm.blocks, stream.blocks.size());
  EXPECT_GT(report.warm.busy_ns, 0u);
}

TEST(ChainRunnerTest, EmptyStreamReportsSeedRoot) {
  WorkloadGenerator gen(SmallConfig(9400));
  WorldState genesis = gen.MakeGenesis();
  ChainRunner runner(ChainOptions{}, genesis);
  ChainReport report = runner.Finish();
  EXPECT_EQ(report.blocks_committed, 0u);
  EXPECT_TRUE(report.roots.empty());
  EXPECT_EQ(HexEncode(report.final_root), HexEncode(genesis.StateRoot()));
  // Finish is idempotent and Submit is rejected afterwards.
  EXPECT_FALSE(runner.Submit(Block{}));
  EXPECT_EQ(runner.Finish().blocks_committed, 0u);
}

TEST(IncrementalStateTrieTest, RandomizedDiffStreamMatchesFromScratchRoots) {
  std::mt19937_64 rng(4242);
  auto address_for = [](uint64_t i) {
    std::array<uint8_t, Address::kSize> bytes{};
    bytes[0] = 0xAB;
    for (size_t b = 0; b < 8; ++b) {
      bytes[12 + b] = static_cast<uint8_t>(i >> (8 * b));
    }
    return Address(bytes);
  };

  // Random genesis: some funded accounts with storage.
  WorldState state;
  for (uint64_t i = 0; i < 16; ++i) {
    state.SetBalance(address_for(i), U256(1'000 + i));
    if (i % 3 == 0) {
      state.SetNonce(address_for(i), i);
    }
    for (uint64_t s = 0; s < i % 5; ++s) {
      state.SetStorage(address_for(i), U256(s), U256(100 * i + s));
    }
  }
  IncrementalStateTrie trie(state);
  ASSERT_EQ(HexEncode(trie.Root()), HexEncode(state.StateRoot()));

  // Stream of random "blocks": interleaved balance/nonce/storage writes,
  // slot clears (including on absent accounts) and fresh-account creation,
  // journaled exactly as the chain runner journals them.
  for (int round = 0; round < 50; ++round) {
    state.BeginDiff();
    int writes = 1 + static_cast<int>(rng() % 12);
    for (int w = 0; w < writes; ++w) {
      Address address = address_for(rng() % 24);  // Indices 16..23 start absent.
      switch (rng() % 4) {
        case 0:
          state.SetBalance(address, U256(rng() % 5'000));
          break;
        case 1:
          state.SetNonce(address, rng() % 64);
          break;
        case 2:
          state.SetStorage(address, U256(rng() % 6), U256(1 + rng() % 1'000));
          break;
        case 3:
          // Slot clear: deletes when present, no-op (and must not
          // materialize the account) when absent.
          state.SetStorage(address, U256(rng() % 6), U256{});
          break;
      }
    }
    StateDiff diff = state.TakeDiff();
    trie.ApplyDiff(diff);
    ASSERT_EQ(HexEncode(trie.Root()), HexEncode(state.StateRoot())) << "round " << round;
    ASSERT_EQ(trie.account_count(), state.account_count()) << "round " << round;
  }
}

// The sharded parallel committer vs the same committer run serially, vs the
// from-scratch oracle — with multi-block batched seals on the parallel side.
// Roots must agree every round; the per-block manifest roots both stores
// record must be the identical sequence even though one sealed 30 singleton
// batches and the other sealed batches of 3.
TEST(IncrementalStateTrieTest, ShardParallelBatchedCommitsMatchSerialPerBlockCommits) {
  std::mt19937_64 rng(5353);
  auto address_for = [](uint64_t i) {
    std::array<uint8_t, Address::kSize> bytes{};
    bytes[0] = 0xCD;
    for (size_t b = 0; b < 8; ++b) {
      bytes[12 + b] = static_cast<uint8_t>(i >> (8 * b));
    }
    return Address(bytes);
  };
  WorldState state;
  for (uint64_t i = 0; i < 16; ++i) {
    state.SetBalance(address_for(i), U256(1'000 + i));
    for (uint64_t s = 0; s < i % 5; ++s) {
      state.SetStorage(address_for(i), U256(s), U256(100 * i + s));
    }
  }

  InMemoryNodeStore serial_store;
  InMemoryNodeStore batched_store;
  IncrementalStateTrie serial_trie(state, &serial_store);
  CommitOptions parallel_options;
  parallel_options.os_threads = 4;
  parallel_options.batch_blocks = 3;
  IncrementalStateTrie batched_trie(state, &batched_store,
                                    IncrementalStateTrie::SeedMode::kFresh, parallel_options);
  ASSERT_EQ(HexEncode(serial_trie.Root()), HexEncode(state.StateRoot()));
  ASSERT_EQ(HexEncode(batched_trie.Root()), HexEncode(state.StateRoot()));

  std::vector<Hash256> pending;
  uint64_t next_batch_first = 0;
  for (int round = 0; round < 30; ++round) {
    state.BeginDiff();
    int writes = 1 + static_cast<int>(rng() % 12);
    for (int w = 0; w < writes; ++w) {
      Address address = address_for(rng() % 24);  // Indices 16..23 start absent.
      switch (rng() % 4) {
        case 0:
          state.SetBalance(address, U256(rng() % 5'000));
          break;
        case 1:
          state.SetNonce(address, rng() % 64);
          break;
        case 2:
          state.SetStorage(address, U256(rng() % 6), U256(1 + rng() % 1'000));
          break;
        case 3:
          state.SetStorage(address, U256(rng() % 6), U256{});
          break;
      }
    }
    StateDiff diff = state.TakeDiff();
    serial_trie.ApplyDiff(diff);
    batched_trie.ApplyDiff(diff);
    ASSERT_EQ(HexEncode(serial_trie.Root()), HexEncode(state.StateRoot())) << "round " << round;
    ASSERT_EQ(HexEncode(batched_trie.Root()), HexEncode(state.StateRoot())) << "round " << round;
    serial_trie.CommitBlock(static_cast<uint64_t>(round));
    pending.push_back(batched_trie.Root());
    if (pending.size() == parallel_options.batch_blocks) {
      batched_trie.CommitBatch(next_batch_first,
                               std::span<const Hash256>(pending.data(), pending.size()));
      next_batch_first += pending.size();
      pending.clear();
    }
  }
  ASSERT_TRUE(pending.empty());  // 30 rounds, batches of 3.
  ASSERT_EQ(serial_store.roots().size(), 30u);
  ASSERT_EQ(batched_store.roots().size(), 30u);
  for (size_t b = 0; b < 30; ++b) {
    EXPECT_EQ(HexEncode(serial_store.roots()[b]), HexEncode(batched_store.roots()[b]))
        << "block " << b;
  }
  EXPECT_EQ(batched_trie.account_count(), state.account_count());
  // Every node a batched seal archived must exist bit-identically in the
  // serial archive (batching may skip intermediate versions, never invent).
  EXPECT_LE(batched_store.node_count(), serial_store.node_count());
}

TEST(ChainShutdownTest, AbortMidStreamLeavesConsistentCommittedPrefix) {
  Stream stream = MakeStream(9500, 12);
  ChainOptions options;
  options.executor = ExecutorKind::kParallelEvm;
  options.exec.os_threads = 4;
  options.queue_depth = 2;  // Small queues: the producer blocks on backpressure.
  ChainRunner runner(options, stream.genesis);

  std::atomic<uint64_t> submitted{0};
  std::thread producer([&] {
    for (const Block& block : stream.blocks) {
      if (!runner.Submit(block)) {
        break;  // Aborted under us: expected.
      }
      submitted.fetch_add(1);
    }
  });
  // Let a few blocks flow, then pull the plug mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ChainReport report = runner.Abort();
  producer.join();

  EXPECT_TRUE(report.aborted);
  EXPECT_LE(report.blocks_committed, report.blocks_executed);
  EXPECT_LE(report.blocks_executed, submitted.load());
  // No tearing: exactly the committed blocks have roots, and they form the
  // same prefix the oracle computes.
  ASSERT_EQ(report.roots.size(), report.blocks_committed);
  for (size_t b = 0; b < report.roots.size(); ++b) {
    EXPECT_EQ(HexEncode(report.roots[b]), HexEncode(stream.oracle_roots[b])) << "block " << b;
  }
  // The stream is dead: submissions bounce, Abort is idempotent.
  EXPECT_FALSE(runner.Submit(stream.blocks[0]));
  EXPECT_EQ(runner.Abort().blocks_committed, report.blocks_committed);
}

TEST(ChainShutdownTest, DestructorAbortsWithoutDeadlock) {
  Stream stream = MakeStream(9600, 4);
  ChainOptions options;
  options.executor = ExecutorKind::kSerial;
  options.queue_depth = 1;
  {
    ChainRunner runner(options, stream.genesis);
    ASSERT_TRUE(runner.Submit(stream.blocks[0]));
    ASSERT_TRUE(runner.Submit(stream.blocks[1]));
    // Destructor must abort, drain and join on its own.
  }
}

}  // namespace
}  // namespace pevm
