// Chain-runner battery: the streaming pipeline (three stages, four with
// cross-block speculation engaged) must be invisible to results. Per-block
// state roots out of the incremental committer are bit-identical to a serial
// per-block from-scratch StateRoot() recomputation for every executor, OS
// thread count, queue depth, commit-overlap and speculation setting; virtual
// makespans match direct (non-chained) execution; and shutdown — graceful or
// aborted mid-stream, speculative block in flight or not — always leaves a
// consistent committed prefix.
//
// Suite names (ChainRunnerTest / ChainShutdownTest / IncrementalStateTrieTest)
// are load-bearing: CI and scripts/check_tsan.sh select tests by them.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "src/chain/chain_runner.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

constexpr ExecutorKind kAllExecutors[] = {
    ExecutorKind::kSerial,   ExecutorKind::kTwoPhaseLocking, ExecutorKind::kOcc,
    ExecutorKind::kBlockStm, ExecutorKind::kParallelEvm,
};

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.transactions_per_block = 48;
  config.users = 300;
  config.tokens = 6;
  config.pools = 3;
  config.funds = 2;
  return config;
}

struct Stream {
  WorldState genesis;
  std::vector<Block> blocks;
  std::vector<Hash256> oracle_roots;  // Serial replay, from-scratch roots.
};

// Shared seeded-chain fixture: building a Stream is the expensive part of
// every chain test (serial oracle replay plus a from-scratch state root per
// block), so streams are memoized by (seed, blocks) and shared. Streams are
// only ever read after construction, and gtest runs tests in one thread, so
// the bare map needs no locking.
class SeededChainTest : public testing::Test {
 protected:
  // The oracle: execute the stream one block at a time with the serial
  // executor and recompute the full state root from scratch after every block.
  static const Stream& GetStream(uint64_t seed, int blocks) {
    static auto* cache = new std::map<std::pair<uint64_t, int>, Stream>;
    auto [it, inserted] = cache->try_emplace({seed, blocks});
    if (inserted) {
      WorkloadGenerator gen(SmallConfig(seed));
      Stream& stream = it->second;
      stream.genesis = gen.MakeGenesis();
      WorldState state = stream.genesis;
      std::unique_ptr<Executor> oracle = MakeExecutor(ExecutorKind::kSerial, ExecOptions{});
      for (int b = 0; b < blocks; ++b) {
        stream.blocks.push_back(gen.MakeBlock());
        oracle->Execute(stream.blocks.back(), state);
        stream.oracle_roots.push_back(state.StateRoot());
      }
    }
    return it->second;
  }

  static void ExpectRootsMatch(const ChainReport& report, const Stream& stream) {
    ASSERT_EQ(report.roots.size(), stream.oracle_roots.size());
    for (size_t b = 0; b < stream.oracle_roots.size(); ++b) {
      ASSERT_EQ(HexEncode(report.roots[b]), HexEncode(stream.oracle_roots[b])) << "block " << b;
    }
    EXPECT_EQ(HexEncode(report.final_root), HexEncode(stream.oracle_roots.back()));
  }

  // Submit the whole stream from a producer thread (small queues block on
  // backpressure), pull the plug mid-stream, and check the committed prefix
  // is exactly an oracle prefix. Shared by the plain and the
  // speculative-block-in-flight abort tests.
  static void RunAbortMidStream(ChainOptions options, const Stream& stream) {
    ChainRunner runner(options, stream.genesis);
    std::atomic<uint64_t> submitted{0};
    std::thread producer([&] {
      for (const Block& block : stream.blocks) {
        if (!runner.Submit(block)) {
          break;  // Aborted under us: expected.
        }
        submitted.fetch_add(1);
      }
    });
    // Let a few blocks flow, then pull the plug mid-stream.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ChainReport report = runner.Abort();
    producer.join();

    EXPECT_TRUE(report.aborted);
    EXPECT_LE(report.blocks_committed, report.blocks_executed);
    EXPECT_LE(report.blocks_executed, submitted.load());
    // No tearing: exactly the committed blocks have roots, and they form the
    // same prefix the oracle computes.
    ASSERT_EQ(report.roots.size(), report.blocks_committed);
    for (size_t b = 0; b < report.roots.size(); ++b) {
      EXPECT_EQ(HexEncode(report.roots[b]), HexEncode(stream.oracle_roots[b])) << "block " << b;
    }
    // The stream is dead: submissions bounce, Abort is idempotent.
    EXPECT_FALSE(runner.Submit(stream.blocks[0]));
    EXPECT_EQ(runner.Abort().blocks_committed, report.blocks_committed);
  }
};

class ChainRunnerTest : public SeededChainTest {};
class ChainShutdownTest : public SeededChainTest {};

TEST_F(ChainRunnerTest, RootsBitIdenticalAcrossExecutorsThreadsBatchesAndQueueDepths) {
  const Stream& stream = GetStream(9100, 5);
  for (ExecutorKind kind : kAllExecutors) {
    for (int os_threads : {1, 4, 16}) {
      for (bool overlap : {true, false}) {
        for (size_t batch : {size_t{1}, size_t{4}}) {
          SCOPED_TRACE(testing::Message()
                       << ExecutorKindName(kind) << " os_threads=" << os_threads
                       << " overlap=" << overlap << " batch=" << batch);
          ChainOptions options;
          options.executor = kind;
          options.exec.os_threads = os_threads;
          options.overlap_commit = overlap;
          // Rotate queue depth with thread count so a depth-1 (fully
          // backpressured) pipeline is covered too.
          options.queue_depth = os_threads == 4 ? 1 : 4;
          // The committer re-roots shard-parallel at the same width the
          // executor runs; batch 4 folds blocks into multi-block seals (with
          // the accounting store attached so the seal path is exercised).
          options.commit.os_threads = os_threads;
          options.commit.batch_blocks = batch;
          options.persist = batch == 1 ? PersistMode::kNone : PersistMode::kInMemory;
          ChainRunner runner(options, stream.genesis);
          for (const Block& block : stream.blocks) {
            ASSERT_TRUE(runner.Submit(block));
          }
          ChainReport report = runner.Finish();
          EXPECT_FALSE(report.aborted);
          EXPECT_EQ(report.blocks_submitted, stream.blocks.size());
          EXPECT_EQ(report.blocks_executed, stream.blocks.size());
          ASSERT_EQ(report.blocks_committed, stream.blocks.size());
          // 5 blocks seal as 5 singleton batches or 4+1 (drain flush).
          EXPECT_EQ(report.commit_batches, batch == 1 ? 5u : 2u);
          ExpectRootsMatch(report, stream);
        }
      }
    }
  }
}

TEST_F(ChainRunnerTest, VirtualMakespansMatchDirectExecution) {
  const Stream& stream = GetStream(9200, 4);
  for (ExecutorKind kind : kAllExecutors) {
    SCOPED_TRACE(ExecutorKindName(kind));
    // Direct, non-pipelined execution is the virtual-time reference.
    std::unique_ptr<Executor> direct = MakeExecutor(kind, ExecOptions{});
    WorldState state = stream.genesis;
    std::vector<uint64_t> direct_makespans;
    for (const Block& block : stream.blocks) {
      direct_makespans.push_back(direct->Execute(block, state).makespan_ns);
    }
    for (int os_threads : {1, 16}) {
      SCOPED_TRACE(testing::Message() << "os_threads=" << os_threads);
      ChainOptions options;
      options.executor = kind;
      options.exec.os_threads = os_threads;
      ChainRunner runner(options, stream.genesis);
      for (const Block& block : stream.blocks) {
        ASSERT_TRUE(runner.Submit(block));
      }
      ChainReport report = runner.Finish();
      ASSERT_EQ(report.block_reports.size(), direct_makespans.size());
      for (size_t b = 0; b < direct_makespans.size(); ++b) {
        EXPECT_EQ(report.block_reports[b].makespan_ns, direct_makespans[b]) << "block " << b;
      }
    }
  }
}

TEST_F(ChainRunnerTest, StorageSimAndCrossBlockPrefetchKeepRootsIdentical) {
  const Stream& stream = GetStream(9300, 4);
  ChainOptions options;
  options.executor = ExecutorKind::kParallelEvm;
  options.exec.os_threads = 4;
  options.exec.prefetch_depth = 4;
  options.exec.storage.cold_read_ns = 2'000;
  options.exec.storage.warm_read_ns = 200;
  options.exec.storage.batch_base_ns = 4'000;
  options.exec.storage.batch_key_ns = 100;
  ChainRunner runner(options, stream.genesis);
  for (const Block& block : stream.blocks) {
    ASSERT_TRUE(runner.Submit(block));
  }
  ChainReport report = runner.Finish();
  ASSERT_EQ(report.blocks_committed, stream.blocks.size());
  ExpectRootsMatch(report, stream);
  // The warm stage actually warmed something.
  EXPECT_EQ(report.warm.blocks, stream.blocks.size());
  EXPECT_GT(report.warm.busy_ns, 0u);
}

// Cross-block speculation under real thread interleaving (this suite runs
// under TSan via scripts/check_tsan.sh): the spec stage races the exec stage
// by design — overlay reads tear against concurrent commits — and the
// boundary must still make every result bit-identical to the spec-off run.
TEST_F(ChainRunnerTest, SpeculationKeepsRootsAndDeterministicReportsIdentical) {
  const Stream& stream = GetStream(9700, 6);
  for (ExecutorKind kind : {ExecutorKind::kParallelEvm, ExecutorKind::kOcc}) {
    SCOPED_TRACE(ExecutorKindName(kind));
    std::vector<ChainReport> reports;
    for (bool speculate : {false, true}) {
      ChainOptions options;
      options.executor = kind;
      options.exec.os_threads = 4;
      options.queue_depth = 3;
      options.speculate = speculate;
      // Storage latency makes the speculative read phase do real waiting, so
      // the boundary genuinely validates against a moving commit frontier.
      options.exec.storage.cold_read_ns = 2'000;
      options.exec.storage.warm_read_ns = 200;
      ChainRunner runner(options, stream.genesis);
      for (const Block& block : stream.blocks) {
        ASSERT_TRUE(runner.Submit(block));
      }
      reports.push_back(runner.Finish());
      ExpectRootsMatch(reports.back(), stream);
    }
    const ChainReport& off = reports[0];
    const ChainReport& on = reports[1];
    EXPECT_EQ(off.speculation.blocks_speculated, 0u);
    EXPECT_GT(on.speculation.blocks_speculated, 0u);
    EXPECT_GT(on.speculation.txs_launched, 0u);
    ASSERT_EQ(off.block_reports.size(), on.block_reports.size());
    for (size_t b = 0; b < off.block_reports.size(); ++b) {
      EXPECT_EQ(off.block_reports[b].makespan_ns, on.block_reports[b].makespan_ns)
          << "block " << b;
      EXPECT_EQ(off.block_reports[b].conflicts, on.block_reports[b].conflicts) << "block " << b;
      ASSERT_EQ(off.block_reports[b].receipts, on.block_reports[b].receipts) << "block " << b;
    }
  }
}

TEST_F(ChainRunnerTest, EmptyStreamReportsSeedRoot) {
  WorkloadGenerator gen(SmallConfig(9400));
  WorldState genesis = gen.MakeGenesis();
  ChainRunner runner(ChainOptions{}, genesis);
  ChainReport report = runner.Finish();
  EXPECT_EQ(report.blocks_committed, 0u);
  EXPECT_TRUE(report.roots.empty());
  EXPECT_EQ(HexEncode(report.final_root), HexEncode(genesis.StateRoot()));
  // Finish is idempotent and Submit is rejected afterwards.
  EXPECT_FALSE(runner.Submit(Block{}));
  EXPECT_EQ(runner.Finish().blocks_committed, 0u);
}

// Fixture for the incremental-trie tests: both run the same randomized
// diff-stream shape (interleaved balance/nonce/storage writes, slot clears —
// including on absent accounts — and fresh-account creation, journaled
// exactly as the chain runner journals them) over a seeded world; only the
// address prefix, rng seed and committer wiring differ per test.
class IncrementalStateTrieTest : public testing::Test {
 protected:
  static constexpr uint64_t kSeededAccounts = 16;

  static Address AddressFor(uint8_t prefix, uint64_t i) {
    std::array<uint8_t, Address::kSize> bytes{};
    bytes[0] = prefix;
    for (size_t b = 0; b < 8; ++b) {
      bytes[12 + b] = static_cast<uint8_t>(i >> (8 * b));
    }
    return Address(bytes);
  }

  // Random genesis: some funded accounts with storage (and optionally nonces).
  static WorldState SeedWorld(uint8_t prefix, bool with_nonces) {
    WorldState state;
    for (uint64_t i = 0; i < kSeededAccounts; ++i) {
      state.SetBalance(AddressFor(prefix, i), U256(1'000 + i));
      if (with_nonces && i % 3 == 0) {
        state.SetNonce(AddressFor(prefix, i), i);
      }
      for (uint64_t s = 0; s < i % 5; ++s) {
        state.SetStorage(AddressFor(prefix, i), U256(s), U256(100 * i + s));
      }
    }
    return state;
  }

  // One random "block" of 1..12 interleaved writes into the open diff.
  static void ApplyRandomWrites(std::mt19937_64& rng, uint8_t prefix, WorldState& state) {
    int writes = 1 + static_cast<int>(rng() % 12);
    for (int w = 0; w < writes; ++w) {
      Address address = AddressFor(prefix, rng() % 24);  // Indices 16..23 start absent.
      switch (rng() % 4) {
        case 0:
          state.SetBalance(address, U256(rng() % 5'000));
          break;
        case 1:
          state.SetNonce(address, rng() % 64);
          break;
        case 2:
          state.SetStorage(address, U256(rng() % 6), U256(1 + rng() % 1'000));
          break;
        case 3:
          // Slot clear: deletes when present, no-op (and must not
          // materialize the account) when absent.
          state.SetStorage(address, U256(rng() % 6), U256{});
          break;
      }
    }
  }
};

TEST_F(IncrementalStateTrieTest, RandomizedDiffStreamMatchesFromScratchRoots) {
  std::mt19937_64 rng(4242);
  WorldState state = SeedWorld(0xAB, /*with_nonces=*/true);
  IncrementalStateTrie trie(state);
  ASSERT_EQ(HexEncode(trie.Root()), HexEncode(state.StateRoot()));

  for (int round = 0; round < 50; ++round) {
    state.BeginDiff();
    ApplyRandomWrites(rng, 0xAB, state);
    StateDiff diff = state.TakeDiff();
    trie.ApplyDiff(diff);
    ASSERT_EQ(HexEncode(trie.Root()), HexEncode(state.StateRoot())) << "round " << round;
    ASSERT_EQ(trie.account_count(), state.account_count()) << "round " << round;
  }
}

// The sharded parallel committer vs the same committer run serially, vs the
// from-scratch oracle — with multi-block batched seals on the parallel side.
// Roots must agree every round; the per-block manifest roots both stores
// record must be the identical sequence even though one sealed 30 singleton
// batches and the other sealed batches of 3.
TEST_F(IncrementalStateTrieTest, ShardParallelBatchedCommitsMatchSerialPerBlockCommits) {
  std::mt19937_64 rng(5353);
  WorldState state = SeedWorld(0xCD, /*with_nonces=*/false);

  InMemoryNodeStore serial_store;
  InMemoryNodeStore batched_store;
  IncrementalStateTrie serial_trie(state, &serial_store);
  CommitOptions parallel_options;
  parallel_options.os_threads = 4;
  parallel_options.batch_blocks = 3;
  IncrementalStateTrie batched_trie(state, &batched_store,
                                    IncrementalStateTrie::SeedMode::kFresh, parallel_options);
  ASSERT_EQ(HexEncode(serial_trie.Root()), HexEncode(state.StateRoot()));
  ASSERT_EQ(HexEncode(batched_trie.Root()), HexEncode(state.StateRoot()));

  std::vector<Hash256> pending;
  uint64_t next_batch_first = 0;
  for (int round = 0; round < 30; ++round) {
    state.BeginDiff();
    ApplyRandomWrites(rng, 0xCD, state);
    StateDiff diff = state.TakeDiff();
    serial_trie.ApplyDiff(diff);
    batched_trie.ApplyDiff(diff);
    ASSERT_EQ(HexEncode(serial_trie.Root()), HexEncode(state.StateRoot())) << "round " << round;
    ASSERT_EQ(HexEncode(batched_trie.Root()), HexEncode(state.StateRoot())) << "round " << round;
    serial_trie.CommitBlock(static_cast<uint64_t>(round));
    pending.push_back(batched_trie.Root());
    if (pending.size() == parallel_options.batch_blocks) {
      batched_trie.CommitBatch(next_batch_first,
                               std::span<const Hash256>(pending.data(), pending.size()));
      next_batch_first += pending.size();
      pending.clear();
    }
  }
  ASSERT_TRUE(pending.empty());  // 30 rounds, batches of 3.
  ASSERT_EQ(serial_store.roots().size(), 30u);
  ASSERT_EQ(batched_store.roots().size(), 30u);
  for (size_t b = 0; b < 30; ++b) {
    EXPECT_EQ(HexEncode(serial_store.roots()[b]), HexEncode(batched_store.roots()[b]))
        << "block " << b;
  }
  EXPECT_EQ(batched_trie.account_count(), state.account_count());
  // Every node a batched seal archived must exist bit-identically in the
  // serial archive (batching may skip intermediate versions, never invent).
  EXPECT_LE(batched_store.node_count(), serial_store.node_count());
}

TEST_F(ChainShutdownTest, AbortMidStreamLeavesConsistentCommittedPrefix) {
  ChainOptions options;
  options.executor = ExecutorKind::kParallelEvm;
  options.exec.os_threads = 4;
  options.queue_depth = 2;  // Small queues: the producer blocks on backpressure.
  RunAbortMidStream(options, GetStream(9500, 12));
}

// Same plug-pull, but with the speculation stage engaged and slowed by
// storage latency so the abort almost certainly lands while a speculative
// block is mid-flight (spec thread blocked in overlay reads or on its
// queues). The committed prefix must be just as consistent, and shutdown
// must not hang on the extra stage.
TEST_F(ChainShutdownTest, AbortWhileSpeculativeBlockInFlight) {
  ChainOptions options;
  options.executor = ExecutorKind::kParallelEvm;
  options.exec.os_threads = 4;
  options.queue_depth = 2;
  options.speculate = true;
  options.exec.storage.cold_read_ns = 50'000;  // >= SimStore's sleep threshold.
  options.exec.storage.warm_read_ns = 200;
  RunAbortMidStream(options, GetStream(9500, 12));
}

TEST_F(ChainShutdownTest, DestructorAbortsWithoutDeadlock) {
  const Stream& stream = GetStream(9600, 4);
  ChainOptions options;
  options.executor = ExecutorKind::kSerial;
  options.queue_depth = 1;
  {
    ChainRunner runner(options, stream.genesis);
    ASSERT_TRUE(runner.Submit(stream.blocks[0]));
    ASSERT_TRUE(runner.Submit(stream.blocks[1]));
    // Destructor must abort, drain and join on its own.
  }
}

// Speculation on a serial-executor chain (seed_mode kSkip) must degrade to a
// no-op rather than start a stage that can never produce seeds.
TEST_F(ChainShutdownTest, SpeculateFlagIsInertForNonSeedableExecutors) {
  const Stream& stream = GetStream(9600, 4);
  ChainOptions options;
  options.executor = ExecutorKind::kSerial;
  options.speculate = true;
  ChainRunner runner(options, stream.genesis);
  for (const Block& block : stream.blocks) {
    ASSERT_TRUE(runner.Submit(block));
  }
  ChainReport report = runner.Finish();
  ExpectRootsMatch(report, stream);
  EXPECT_EQ(report.speculation.blocks_speculated, 0u);
  EXPECT_EQ(report.spec.blocks, 0u);
}

}  // namespace
}  // namespace pevm
