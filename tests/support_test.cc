#include <gtest/gtest.h>

#include <map>
#include <random>

#include "src/support/bytes.h"
#include "src/support/keccak.h"
#include "src/support/rlp.h"
#include "src/support/u256.h"
#include "src/support/zipf.h"

namespace pevm {
namespace {

// --- Hex / bytes ---

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(data), "0001abff");
  EXPECT_EQ(HexDecode("0001abff"), data);
  EXPECT_EQ(HexDecode("0x0001ABFF"), data);
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").has_value());
  EXPECT_FALSE(HexDecode("zz").has_value());
}

TEST(BytesTest, AddressFromId) {
  Address a = Address::FromId(0x1234);
  EXPECT_EQ(a.ToHex(), "0x0000000000000000000000000000000000001234");
  EXPECT_FALSE(a.IsZero());
  EXPECT_TRUE(Address().IsZero());
}

TEST(BytesTest, AddressHexRoundTrip) {
  Address a = Address::FromId(0xdeadbeef);
  std::optional<Address> b = Address::FromHex(a.ToHex());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a, *b);
}

// --- U256 arithmetic ---

TEST(U256Test, BasicAddSub) {
  U256 a(100);
  U256 b(42);
  EXPECT_EQ(a + b, U256(142));
  EXPECT_EQ(a - b, U256(58));
}

TEST(U256Test, AddWraps) {
  U256 max = ~U256{};
  EXPECT_EQ(max + U256(1), U256{});
  EXPECT_EQ(U256{} - U256(1), max);
}

TEST(U256Test, AddCarriesAcrossLimbs) {
  U256 a(0, 0, 0, ~uint64_t{0});
  EXPECT_EQ(a + U256(1), U256(0, 0, 1, 0));
}

TEST(U256Test, MulBasicAndWrap) {
  EXPECT_EQ(U256(7) * U256(6), U256(42));
  U256 two_to_128 = U256::Shl(128, U256(1));
  EXPECT_EQ(two_to_128 * two_to_128, U256{});  // 2^256 wraps to zero.
  EXPECT_EQ(U256(0, 0, 1, 0) * U256(0, 0, 1, 0), two_to_128);  // 2^64 * 2^64.
  U256 two_to_255 = U256::Shl(255, U256(1));
  EXPECT_EQ(two_to_255 * U256(2), U256{});
}

TEST(U256Test, DivMod) {
  EXPECT_EQ(U256::Div(U256(100), U256(7)), U256(14));
  EXPECT_EQ(U256::Mod(U256(100), U256(7)), U256(2));
  EXPECT_EQ(U256::Div(U256(100), U256{}), U256{});  // EVM: div by zero is 0.
  EXPECT_EQ(U256::Mod(U256(100), U256{}), U256{});
  EXPECT_EQ(U256::Div(U256(5), U256(100)), U256{});
  EXPECT_EQ(U256::Mod(U256(5), U256(100)), U256(5));
}

TEST(U256Test, DivLargeValues) {
  U256 a = U256::Exp(U256(10), U256(40));
  U256 b = U256::Exp(U256(10), U256(20));
  EXPECT_EQ(U256::Div(a, b), b);
  EXPECT_EQ(U256::Mod(a, b), U256{});
  EXPECT_EQ(U256::Mod(a + U256(3), b), U256(3));
}

TEST(U256Test, SDivSemantics) {
  U256 minus_ten = -U256(10);
  EXPECT_EQ(U256::SDiv(minus_ten, U256(3)), -U256(3));
  EXPECT_EQ(U256::SDiv(U256(10), -U256(3)), -U256(3));
  EXPECT_EQ(U256::SDiv(minus_ten, -U256(3)), U256(3));
  // SDIV(-2^255, -1) == -2^255 (the EVM's only signed-overflow case).
  U256 int_min = U256::Shl(255, U256(1));
  EXPECT_EQ(U256::SDiv(int_min, -U256(1)), int_min);
  EXPECT_EQ(U256::SDiv(U256(1), U256{}), U256{});
}

TEST(U256Test, SModTakesDividendSign) {
  EXPECT_EQ(U256::SMod(-U256(10), U256(3)), -U256(1));
  EXPECT_EQ(U256::SMod(U256(10), -U256(3)), U256(1));
  EXPECT_EQ(U256::SMod(-U256(10), -U256(3)), -U256(1));
}

TEST(U256Test, AddModMulMod) {
  EXPECT_EQ(U256::AddMod(U256(10), U256(10), U256(7)), U256(6));
  EXPECT_EQ(U256::MulMod(U256(10), U256(10), U256(7)), U256(2));
  EXPECT_EQ(U256::AddMod(U256(10), U256(10), U256{}), U256{});
  EXPECT_EQ(U256::MulMod(U256(10), U256(10), U256{}), U256{});
  // The intermediate sum/product must not wrap at 2^256.
  U256 max = ~U256{};
  EXPECT_EQ(U256::AddMod(max, max, U256(12)), U256::Mod(U256::Mod(max, U256(12)) * U256(2), U256(12)));
  EXPECT_EQ(U256::MulMod(max, max, max - U256(1)), U256(1));  // (n+1)^2 mod n == 1 for n = max-1.
}

TEST(U256Test, Exp) {
  EXPECT_EQ(U256::Exp(U256(2), U256(10)), U256(1024));
  EXPECT_EQ(U256::Exp(U256(0), U256(0)), U256(1));  // EVM: 0^0 == 1.
  EXPECT_EQ(U256::Exp(U256(0), U256(5)), U256{});
  EXPECT_EQ(U256::Exp(U256(2), U256(256)), U256{});  // Wraps.
  EXPECT_EQ(U256::Exp(U256(3), U256(4)), U256(81));
}

TEST(U256Test, SignExtend) {
  // 0xff at byte 0 sign-extends to -1.
  EXPECT_EQ(U256::SignExtend(U256(0), U256(0xff)), ~U256{});
  EXPECT_EQ(U256::SignExtend(U256(0), U256(0x7f)), U256(0x7f));
  // Upper garbage is cleared when the sign bit is 0.
  EXPECT_EQ(U256::SignExtend(U256(0), U256(0x170)), U256(0x70));
  EXPECT_EQ(U256::SignExtend(U256(31), U256(0xff)), U256(0xff));
  EXPECT_EQ(U256::SignExtend(U256(100), U256(0xff)), U256(0xff));
}

TEST(U256Test, ByteOp) {
  U256 v = U256::FromString("0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20").value();
  EXPECT_EQ(U256::Byte(U256(0), v), U256(0x01));
  EXPECT_EQ(U256::Byte(U256(31), v), U256(0x20));
  EXPECT_EQ(U256::Byte(U256(32), v), U256{});
}

TEST(U256Test, Shifts) {
  EXPECT_EQ(U256::Shl(4, U256(1)), U256(16));
  EXPECT_EQ(U256::Shr(4, U256(16)), U256(1));
  EXPECT_EQ(U256::Shl(256, U256(1)), U256{});
  EXPECT_EQ(U256::Shr(256, ~U256{}), U256{});
  EXPECT_EQ(U256::Shl(64, U256(1)), U256(0, 0, 1, 0));
  EXPECT_EQ(U256::Shr(64, U256(0, 0, 1, 0)), U256(1));
  EXPECT_EQ(U256::Shl(130, U256(1)), U256(0, 4, 0, 0));
}

TEST(U256Test, Sar) {
  EXPECT_EQ(U256::Sar(U256(1), -U256(4)), -U256(2));
  EXPECT_EQ(U256::Sar(U256(1), U256(4)), U256(2));
  EXPECT_EQ(U256::Sar(U256(300), -U256(1)), ~U256{});
  EXPECT_EQ(U256::Sar(U256(300), U256(7)), U256{});
  EXPECT_EQ(U256::Sar(U256(0), -U256(4)), -U256(4));
}

TEST(U256Test, Comparisons) {
  EXPECT_TRUE(U256(1) < U256(2));
  EXPECT_TRUE(U256(0, 0, 1, 0) > U256(~uint64_t{0}));
  EXPECT_TRUE(U256::SLt(-U256(1), U256(0)));
  EXPECT_FALSE(U256::SLt(U256(0), -U256(1)));
  EXPECT_TRUE(U256::SLt(-U256(5), -U256(3)));
}

TEST(U256Test, BigEndianRoundTrip) {
  U256 v = U256::FromString("0xdeadbeefcafebabe0123456789abcdef").value();
  std::array<uint8_t, 32> be = v.ToBigEndian();
  EXPECT_EQ(U256::FromBigEndian(BytesView(be.data(), be.size())), v);
  // Short input is right-aligned (zero-extended on the left).
  Bytes two = {0x01, 0x00};
  EXPECT_EQ(U256::FromBigEndian(two), U256(256));
}

TEST(U256Test, AddressConversionTruncatesTo160Bits) {
  U256 v = U256::FromString("0xffffffffffffffffffffffff1122334455667788990011223344556677889900")
               .value();
  EXPECT_EQ(v.ToAddress().ToHex(), "0x1122334455667788990011223344556677889900");
  Address a = Address::FromId(7);
  EXPECT_EQ(U256::FromAddress(a), U256(7));
}

TEST(U256Test, StringConversions) {
  EXPECT_EQ(U256::FromString("12345").value(), U256(12345));
  EXPECT_EQ(U256::FromString("0xff").value(), U256(255));
  EXPECT_EQ(U256(255).ToHexString(), "0xff");
  EXPECT_EQ(U256{}.ToString(), "0");
  EXPECT_EQ(U256{}.ToHexString(), "0x0");
  U256 big = U256::Exp(U256(10), U256(30));
  EXPECT_EQ(big.ToString(), "1000000000000000000000000000000");
  EXPECT_EQ(U256::FromString(big.ToString()).value(), big);
  EXPECT_FALSE(U256::FromString("").has_value());
  EXPECT_FALSE(U256::FromString("12a").has_value());
  EXPECT_FALSE(U256::FromString("0x").has_value());
  // 65 hex digits overflow.
  EXPECT_FALSE(U256::FromString("0x1" + std::string(64, '0')).has_value());
}

TEST(U256Test, BitAndByteLength) {
  EXPECT_EQ(U256{}.BitLength(), 0u);
  EXPECT_EQ(U256(1).BitLength(), 1u);
  EXPECT_EQ(U256(255).BitLength(), 8u);
  EXPECT_EQ(U256(256).BitLength(), 9u);
  EXPECT_EQ((~U256{}).BitLength(), 256u);
  EXPECT_EQ(U256(255).ByteLength(), 1u);
  EXPECT_EQ(U256(256).ByteLength(), 2u);
}

// Property sweep: EVM identities over pseudo-random values.
class U256PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(U256PropertyTest, AlgebraicIdentities) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    U256 a(rng(), rng(), rng(), rng());
    U256 b(rng(), rng(), rng(), rng());
    U256 n(0, 0, rng(), rng());
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a - b, -(b - a));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a ^ b) ^ b, a);
    EXPECT_EQ(~~a, a);
    if (!b.IsZero()) {
      EXPECT_EQ(U256::Div(a, b) * b + U256::Mod(a, b), a);
      EXPECT_TRUE(U256::Mod(a, b) < b);
    }
    if (!n.IsZero()) {
      EXPECT_EQ(U256::AddMod(a, b, n), U256::Mod(U256::Mod(a, n) + U256::Mod(b, n), n));
    }
    EXPECT_EQ(U256::Shr(8, U256::Shl(8, U256::Shr(8, a))), U256::Shr(8, a));
    std::array<uint8_t, 32> be = a.ToBigEndian();
    EXPECT_EQ(U256::FromBigEndian(BytesView(be.data(), be.size())), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U256PropertyTest, ::testing::Values(1, 2, 3, 42, 1337));

// --- Keccak-256 (known-answer vectors) ---

TEST(KeccakTest, EmptyInput) {
  EXPECT_EQ(HexEncode(Keccak256({})),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(KeccakTest, Abc) {
  Bytes abc = {'a', 'b', 'c'};
  EXPECT_EQ(HexEncode(Keccak256(abc)),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(KeccakTest, Erc20TransferSelector) {
  // keccak("transfer(address,uint256)")[0:4] == a9059cbb — the universally
  // known ERC-20 selector; a strong end-to-end check of the permutation.
  std::string sig = "transfer(address,uint256)";
  Bytes data(sig.begin(), sig.end());
  EXPECT_EQ(HexEncode(Keccak256(data)).substr(0, 8), "a9059cbb");
}

TEST(KeccakTest, MultiBlockInput) {
  // > 136 bytes forces a second absorb round. Vector from OpenSSL KECCAK-256.
  Bytes data(200, 0x61);  // 200 * 'a'
  EXPECT_EQ(HexEncode(Keccak256(data)),
            "96ea54061def936c4be90b518992fdc6f12f535068a256229aca54267b4d084d");
}

TEST(KeccakTest, ExactRateBoundary) {
  // Exactly one full rate block; padding goes into a second block.
  // Vector from OpenSSL KECCAK-256.
  Bytes data(136, 0x00);
  EXPECT_EQ(HexEncode(Keccak256(data)),
            "3a5912a7c5faa06ee4fe906253e339467a9ce87d533c65be3c15cb231cdb25f9");
}

TEST(KeccakTest, MappingSlotMatchesManualConstruction) {
  U256 key(0x1234);
  U256 slot(2);
  Bytes buf(64, 0);
  std::array<uint8_t, 32> k = key.ToBigEndian();
  std::array<uint8_t, 32> s = slot.ToBigEndian();
  std::copy(k.begin(), k.end(), buf.begin());
  std::copy(s.begin(), s.end(), buf.begin() + 32);
  EXPECT_EQ(MappingSlot(key, slot), Keccak256Word(buf));
  EXPECT_EQ(MappingSlot2(U256(1), U256(2), U256(3)), MappingSlot(U256(2), MappingSlot(U256(1), U256(3))));
}

// --- RLP (yellow-paper examples) ---

TEST(RlpTest, SingleByte) {
  Bytes dog = {'d', 'o', 'g'};
  EXPECT_EQ(HexEncode(RlpEncodeBytes(dog)), "83646f67");
  Bytes single = {0x0f};
  EXPECT_EQ(HexEncode(RlpEncodeBytes(single)), "0f");
  Bytes hi = {0x80};
  EXPECT_EQ(HexEncode(RlpEncodeBytes(hi)), "8180");
}

TEST(RlpTest, EmptyStringAndZero) {
  EXPECT_EQ(HexEncode(RlpEncodeBytes({})), "80");
  EXPECT_EQ(HexEncode(RlpEncodeUint(U256{})), "80");
  EXPECT_EQ(HexEncode(RlpEncodeUint(U256(15))), "0f");
  EXPECT_EQ(HexEncode(RlpEncodeUint(U256(1024))), "820400");
}

TEST(RlpTest, List) {
  std::vector<Bytes> items = {RlpEncodeBytes(Bytes{'c', 'a', 't'}),
                              RlpEncodeBytes(Bytes{'d', 'o', 'g'})};
  EXPECT_EQ(HexEncode(RlpEncodeList(items)), "c88363617483646f67");
  EXPECT_EQ(HexEncode(RlpEncodeList({})), "c0");
}

TEST(RlpTest, LongString) {
  std::string lorem = "Lorem ipsum dolor sit amet, consectetur adipisicing elit";
  Bytes data(lorem.begin(), lorem.end());
  Bytes enc = RlpEncodeBytes(data);
  EXPECT_EQ(enc[0], 0xb8);
  EXPECT_EQ(enc[1], data.size());
  EXPECT_EQ(enc.size(), data.size() + 2);
}

TEST(RlpTest, LongList) {
  std::vector<Bytes> items(30, RlpEncodeBytes(Bytes{'a', 'b', 'c'}));
  Bytes enc = RlpEncodeList(items);
  EXPECT_EQ(enc[0], 0xf8);
  EXPECT_EQ(enc[1], 30 * 4);
}

// --- Zipf sampler ---

TEST(ZipfTest, ProducesValidRange) {
  std::mt19937_64 rng(7);
  ZipfDistribution zipf(1000, 1.1);
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = zipf(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
  }
}

TEST(ZipfTest, SkewMatchesExpectation) {
  std::mt19937_64 rng(7);
  ZipfDistribution zipf(100000, 1.05);
  std::map<uint64_t, int> counts;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    counts[zipf(rng)]++;
  }
  // Rank 1 must dominate, and the top 100 (0.1%) should carry a majority of
  // the mass — the paper's hot-spot shape.
  int top100 = 0;
  for (uint64_t r = 1; r <= 100; ++r) {
    top100 += counts.count(r) ? counts[r] : 0;
  }
  EXPECT_GT(counts[1], counts.count(2) ? counts[2] : 0);
  EXPECT_GT(static_cast<double>(top100) / kSamples, 0.45);
}

TEST(ZipfTest, DegenerateSingleElement) {
  std::mt19937_64 rng(7);
  ZipfDistribution zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf(rng), 1u);
  }
}

}  // namespace
}  // namespace pevm
