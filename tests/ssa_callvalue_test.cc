// CALLVALUE provenance across frames: an inner frame's msg.value can be
// derived from caller data (the CALL value operand), so CALLVALUE inside the
// callee must inherit that definition — and the redo phase must repair
// callee logic computed from it. Also covers DELEGATECALL's msg.value
// inheritance.
#include <gtest/gtest.h>

#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"
#include "src/state/state_view.h"
#include "src/workload/assembler.h"
#include "src/workload/contracts.h"

namespace pevm {
namespace {

const Address kSender = Address::FromId(0x5E4D);

struct Spec {
  Receipt receipt;
  ReadSet reads;
  WriteSet writes;
  TxLog log;
};

Spec Speculate(const WorldState& base, const BlockContext& block, const Transaction& tx) {
  StateView view(base);
  SsaBuilder builder;
  Spec s;
  s.receipt = ApplyTransaction(view, block, tx, &builder);
  if (!s.receipt.valid) {
    builder.MarkNotRedoable();
  }
  s.log = builder.TakeLog();
  s.reads = view.read_set();
  s.writes = view.take_write_set();
  return s;
}

class CallValueProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    genesis_.SetBalance(kSender, U256::Exp(U256(10), U256(18)));
    tx_.from = kSender;
    tx_.gas_limit = 400'000;
    tx_.gas_price = U256(1);
  }

  WorldState genesis_;
  BlockContext block_;
  Transaction tx_;
};

// Forwarder reads an amount from storage and CALLs a vault with that much
// ether; the vault records CALLVALUE in its own storage. A conflict on the
// forwarder's amount slot must repair the vault's recorded value.
TEST_F(CallValueProvenanceTest, InnerCallvalueRepairedThroughRedo) {
  // Vault: SSTORE(0, CALLVALUE); STOP.
  Assembler vault_asm;
  vault_asm.Op(Opcode::kCallvalue).Push(0).Op(Opcode::kSstore).Op(Opcode::kStop);
  Address vault = Address::FromId(0xA1);
  genesis_.SetCode(vault, vault_asm.Build());

  // Forwarder: amt = SLOAD(0); CALL(gas, vault, amt, 0,0, 0,0); STOP.
  Assembler fwd;
  fwd.Push(0).Push(0).Push(0).Push(0);
  fwd.Push(0).Op(Opcode::kSload);
  fwd.Push(vault).Op(Opcode::kGas);
  fwd.Op(Opcode::kCall).Op(Opcode::kPop).Op(Opcode::kStop);
  Address forwarder = Address::FromId(0xA2);
  genesis_.SetCode(forwarder, fwd.Build());
  genesis_.SetStorage(forwarder, U256(0), U256(700));
  genesis_.SetBalance(forwarder, U256(1'000'000));

  tx_.to = forwarder;
  Spec spec = Speculate(genesis_, block_, tx_);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);
  ASSERT_TRUE(spec.log.redoable);
  StateKey recorded = StateKey::Storage(vault, U256(0));
  ASSERT_EQ(spec.writes.at(recorded), U256(700));

  // Another transaction changed the amount slot to 900.
  StateKey amt_slot = StateKey::Storage(forwarder, U256(0));
  WorldState state = genesis_;
  state.Set(amt_slot, U256(900));
  RedoResult redo = RunRedo(spec.log, {{amt_slot, U256(900)}},
                            [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  // The vault's stored CALLVALUE and both balances all repaired.
  EXPECT_EQ(redo.write_set.at(recorded), U256(900));
  EXPECT_EQ(redo.write_set.at(StateKey::Balance(vault)), U256(900));
  EXPECT_EQ(redo.write_set.at(StateKey::Balance(forwarder)), U256(1'000'000 - 900));

  // Oracle cross-check (Lemma 2).
  StateView oracle_view(state);
  Receipt oracle = ApplyTransaction(oracle_view, block_, tx_);
  ASSERT_EQ(oracle.status, EvmStatus::kSuccess);
  EXPECT_EQ(oracle.gas_used, spec.receipt.gas_used);
  for (const auto& [key, value] : oracle_view.write_set()) {
    EXPECT_EQ(redo.write_set.at(key), value) << key.ToString();
  }
}

// The crowdfund contract through the same pattern: contribute() reads
// CALLVALUE twice (total and per-contributor slots).
TEST_F(CallValueProvenanceTest, CrowdfundThroughForwarder) {
  Address fund = Address::FromId(0xB1);
  genesis_.SetCode(fund, BuildCrowdfundCode());

  // Forwarder: amt = SLOAD(0); CALL(gas, fund, amt, in=contribute(), out 0,0).
  Bytes contribute = CrowdfundContributeCall();  // 4-byte selector.
  Assembler fwd;
  // mem[0..4) = selector (write as a 32-byte word at offset 0; the selector
  // occupies the first 4 bytes and calldata length is 4).
  U256 selector_word = U256::Shl(224, U256((static_cast<uint64_t>(contribute[0]) << 24) |
                                           (static_cast<uint64_t>(contribute[1]) << 16) |
                                           (static_cast<uint64_t>(contribute[2]) << 8) |
                                           contribute[3]));
  fwd.Push(selector_word).Push(0).Op(Opcode::kMstore);
  fwd.Push(0).Push(0).Push(4).Push(0);      // outlen, outoff, inlen=4, inoff=0.
  fwd.Push(0).Op(Opcode::kSload);           // value = storage[0].
  fwd.Push(fund).Op(Opcode::kGas);
  fwd.Op(Opcode::kCall).Op(Opcode::kPop).Op(Opcode::kStop);
  Address forwarder = Address::FromId(0xB2);
  genesis_.SetCode(forwarder, fwd.Build());
  genesis_.SetStorage(forwarder, U256(0), U256(5'000));
  genesis_.SetBalance(forwarder, U256(1'000'000));

  tx_.to = forwarder;
  Spec spec = Speculate(genesis_, block_, tx_);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess) << EvmStatusName(spec.receipt.status);
  ASSERT_TRUE(spec.log.redoable);
  StateKey total = StateKey::Storage(fund, U256(kCrowdfundTotalSlot));
  StateKey per = StateKey::Storage(fund, CrowdfundContributionSlot(forwarder));
  ASSERT_EQ(spec.writes.at(total), U256(5'000));
  ASSERT_EQ(spec.writes.at(per), U256(5'000));

  StateKey amt_slot = StateKey::Storage(forwarder, U256(0));
  WorldState state = genesis_;
  state.Set(amt_slot, U256(8'000));
  RedoResult redo = RunRedo(spec.log, {{amt_slot, U256(8'000)}},
                            [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  EXPECT_EQ(redo.write_set.at(total), U256(8'000));
  EXPECT_EQ(redo.write_set.at(per), U256(8'000));
}

// DELEGATECALL: the library runs with the caller's msg.value; a value-derived
// write in the library (executing in the caller's storage) must repair.
TEST_F(CallValueProvenanceTest, DelegatecallInheritsValueDefinition) {
  // Library: SSTORE(7, CALLVALUE); STOP.
  Assembler lib;
  lib.Op(Opcode::kCallvalue).Push(7).Op(Opcode::kSstore).Op(Opcode::kStop);
  Address library = Address::FromId(0xC1);
  genesis_.SetCode(library, lib.Build());

  // Proxy: amt = SLOAD(0); CALL self-with-value? DELEGATECALL cannot attach
  // value, so the *outer* call's value flows: build a two-level scenario —
  // outer contract CALLs the proxy with storage-derived value; the proxy
  // DELEGATECALLs the library, which stores CALLVALUE (= the proxy's
  // msg.value) into the proxy's storage.
  Assembler proxy;
  proxy.Push(0).Push(0).Push(0).Push(0).Push(library).Op(Opcode::kGas);
  proxy.Op(Opcode::kDelegatecall).Op(Opcode::kPop).Op(Opcode::kStop);
  Address proxy_addr = Address::FromId(0xC2);
  genesis_.SetCode(proxy_addr, proxy.Build());

  Assembler outer;
  outer.Push(0).Push(0).Push(0).Push(0);
  outer.Push(0).Op(Opcode::kSload);
  outer.Push(proxy_addr).Op(Opcode::kGas);
  outer.Op(Opcode::kCall).Op(Opcode::kPop).Op(Opcode::kStop);
  Address outer_addr = Address::FromId(0xC3);
  genesis_.SetCode(outer_addr, outer.Build());
  genesis_.SetStorage(outer_addr, U256(0), U256(333));
  genesis_.SetBalance(outer_addr, U256(1'000'000));

  tx_.to = outer_addr;
  Spec spec = Speculate(genesis_, block_, tx_);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);
  ASSERT_TRUE(spec.log.redoable);
  StateKey recorded = StateKey::Storage(proxy_addr, U256(7));
  ASSERT_EQ(spec.writes.at(recorded), U256(333));

  StateKey amt_slot = StateKey::Storage(outer_addr, U256(0));
  WorldState state = genesis_;
  state.Set(amt_slot, U256(444));
  RedoResult redo = RunRedo(spec.log, {{amt_slot, U256(444)}},
                            [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  EXPECT_EQ(redo.write_set.at(recorded), U256(444));
}

}  // namespace
}  // namespace pevm
