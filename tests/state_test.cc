#include <gtest/gtest.h>

#include "src/state/state_view.h"
#include "src/state/world_state.h"

namespace pevm {
namespace {

const Address kAlice = Address::FromId(1);
const Address kBob = Address::FromId(2);
const Address kToken = Address::FromId(100);

TEST(StateKeyTest, EqualityAndHashing) {
  StateKey a = StateKey::Storage(kToken, U256(5));
  StateKey b = StateKey::Storage(kToken, U256(5));
  StateKey c = StateKey::Storage(kToken, U256(6));
  StateKey d = StateKey::Balance(kToken);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(StateKeyHash{}(a), StateKeyHash{}(b));
  EXPECT_NE(StateKey::Balance(kAlice), StateKey::Nonce(kAlice));
}

TEST(WorldStateTest, DefaultsAreZero) {
  WorldState ws;
  EXPECT_EQ(ws.GetBalance(kAlice), U256{});
  EXPECT_EQ(ws.GetNonce(kAlice), 0u);
  EXPECT_EQ(ws.GetStorage(kToken, U256(1)), U256{});
  EXPECT_EQ(ws.GetCode(kToken), nullptr);
}

TEST(WorldStateTest, SetAndGetRoundTrip) {
  WorldState ws;
  ws.SetBalance(kAlice, U256(1000));
  ws.SetNonce(kAlice, 7);
  ws.SetStorage(kToken, U256(1), U256(42));
  ws.SetCode(kToken, Bytes{0x60, 0x00});
  EXPECT_EQ(ws.GetBalance(kAlice), U256(1000));
  EXPECT_EQ(ws.GetNonce(kAlice), 7u);
  EXPECT_EQ(ws.GetStorage(kToken, U256(1)), U256(42));
  ASSERT_NE(ws.GetCode(kToken), nullptr);
  EXPECT_EQ(ws.GetCode(kToken)->size(), 2u);
}

TEST(WorldStateTest, ZeroStorageWriteClearsSlot) {
  WorldState ws;
  ws.SetStorage(kToken, U256(1), U256(42));
  Hash256 before = ws.StateRoot();
  ws.SetStorage(kToken, U256(1), U256{});
  EXPECT_EQ(ws.GetStorage(kToken, U256(1)), U256{});
  EXPECT_NE(HexEncode(before), HexEncode(ws.StateRoot()));
}

TEST(WorldStateTest, UniformKeyAccess) {
  WorldState ws;
  ws.Set(StateKey::Balance(kAlice), U256(5));
  ws.Set(StateKey::Nonce(kAlice), U256(3));
  ws.Set(StateKey::Storage(kToken, U256(9)), U256(11));
  EXPECT_EQ(ws.Get(StateKey::Balance(kAlice)), U256(5));
  EXPECT_EQ(ws.Get(StateKey::Nonce(kAlice)), U256(3));
  EXPECT_EQ(ws.Get(StateKey::Storage(kToken, U256(9))), U256(11));
}

TEST(WorldStateTest, ApplyWriteSet) {
  WorldState ws;
  WriteSet writes;
  writes[StateKey::Balance(kAlice)] = U256(100);
  writes[StateKey::Storage(kToken, U256(1))] = U256(2);
  ws.Apply(writes);
  EXPECT_EQ(ws.GetBalance(kAlice), U256(100));
  EXPECT_EQ(ws.GetStorage(kToken, U256(1)), U256(2));
}

TEST(WorldStateTest, StateRootIsContentAddressed) {
  WorldState a;
  a.SetBalance(kAlice, U256(10));
  a.SetStorage(kToken, U256(1), U256(2));
  WorldState b;
  b.SetStorage(kToken, U256(1), U256(2));
  b.SetBalance(kAlice, U256(10));
  EXPECT_EQ(HexEncode(a.StateRoot()), HexEncode(b.StateRoot()));
  EXPECT_EQ(a.Digest(), b.Digest());
  b.SetBalance(kBob, U256(1));
  EXPECT_NE(HexEncode(a.StateRoot()), HexEncode(b.StateRoot()));
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(StateViewTest, ReadsFallThroughAndRecord) {
  WorldState ws;
  ws.SetBalance(kAlice, U256(50));
  StateView view(ws);
  EXPECT_EQ(view.GetBalance(kAlice), U256(50));
  EXPECT_EQ(view.read_set().size(), 1u);
  EXPECT_EQ(view.read_set().at(StateKey::Balance(kAlice)), U256(50));
  // Second read does not duplicate.
  view.GetBalance(kAlice);
  EXPECT_EQ(view.read_set().size(), 1u);
}

TEST(StateViewTest, WritesAreBufferedNotApplied) {
  WorldState ws;
  ws.SetBalance(kAlice, U256(50));
  StateView view(ws);
  view.SetBalance(kAlice, U256(40));
  EXPECT_EQ(view.GetBalance(kAlice), U256(40));
  EXPECT_EQ(ws.GetBalance(kAlice), U256(50));
  ws.Apply(view.write_set());
  EXPECT_EQ(ws.GetBalance(kAlice), U256(40));
}

TEST(StateViewTest, ReadYourOwnWriteDoesNotTouchReadSet) {
  WorldState ws;
  StateView view(ws);
  view.SetStorage(kToken, U256(1), U256(9));
  EXPECT_EQ(view.GetStorage(kToken, U256(1)), U256(9));
  EXPECT_TRUE(view.read_set().empty());
  EXPECT_TRUE(view.HasWritten(StateKey::Storage(kToken, U256(1))));
}

TEST(StateViewTest, GetCommittedBypassesOverlay) {
  WorldState ws;
  ws.SetStorage(kToken, U256(1), U256(5));
  StateView view(ws);
  view.SetStorage(kToken, U256(1), U256(99));
  EXPECT_EQ(view.GetCommitted(StateKey::Storage(kToken, U256(1))), U256(5));
  EXPECT_EQ(view.Get(StateKey::Storage(kToken, U256(1))), U256(99));
}

TEST(StateViewTest, SnapshotRevertRestoresWrites) {
  WorldState ws;
  ws.SetStorage(kToken, U256(1), U256(5));
  StateView view(ws);
  view.SetStorage(kToken, U256(1), U256(10));
  size_t snap = view.Snapshot();
  view.SetStorage(kToken, U256(1), U256(20));
  view.SetStorage(kToken, U256(2), U256(30));
  view.RevertToSnapshot(snap);
  EXPECT_EQ(view.GetStorage(kToken, U256(1)), U256(10));
  EXPECT_EQ(view.GetStorage(kToken, U256(2)), U256{});
  EXPECT_FALSE(view.HasWritten(StateKey::Storage(kToken, U256(2))));
}

TEST(StateViewTest, NestedSnapshots) {
  WorldState ws;
  StateView view(ws);
  view.SetBalance(kAlice, U256(1));
  size_t s1 = view.Snapshot();
  view.SetBalance(kAlice, U256(2));
  size_t s2 = view.Snapshot();
  view.SetBalance(kAlice, U256(3));
  view.RevertToSnapshot(s2);
  EXPECT_EQ(view.GetBalance(kAlice), U256(2));
  view.RevertToSnapshot(s1);
  EXPECT_EQ(view.GetBalance(kAlice), U256(1));
}

TEST(StateViewTest, ReadSetSurvivesRevert) {
  // A reverted branch still observed committed data; validation must keep it
  // (conservative, mirrors geth access tracking).
  WorldState ws;
  ws.SetStorage(kToken, U256(7), U256(1));
  StateView view(ws);
  size_t snap = view.Snapshot();
  view.GetStorage(kToken, U256(7));
  view.RevertToSnapshot(snap);
  EXPECT_EQ(view.read_set().size(), 1u);
}

}  // namespace
}  // namespace pevm
