// Unit + property tests for the embedded KV store (src/kv): record framing,
// batch atomicity under the commit-marker protocol, reopen persistence,
// torn-tail and corrupt-record recovery, segment rotation, compaction
// (including tombstones), the sharded read cache, and a concurrency battery
// (writer + readers + compaction) that doubles as the TSan driver.
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/crc32.h"
#include "src/kv/kv_store.h"
#include "src/kv/record.h"

namespace pevm {
namespace {

namespace fs = std::filesystem;

Bytes ToBytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string FromBytes(const Bytes& b) { return std::string(b.begin(), b.end()); }

class KvDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("kv_" + std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<KvStore> OpenStore(KvOptions options = {}) {
    options.fsync = false;  // Tests that exercise fsync set it explicitly.
    std::string error;
    auto store = KvStore::Open(dir_.string(), options, &error);
    EXPECT_NE(store, nullptr) << error;
    return store;
  }

  fs::path dir_;
};

using KvStoreTest = KvDirTest;
using KvRecoveryTest = KvDirTest;
using KvCompactionTest = KvDirTest;
using KvConcurrencyTest = KvDirTest;

TEST(KvCrcTest, KnownVectorAndChaining) {
  // RFC 3720 test vector: CRC-32C over 32 zero bytes.
  Bytes zeros(32, 0);
  EXPECT_EQ(Crc32c(BytesView(zeros.data(), zeros.size())), 0x8a9136aau);
  Bytes all = ToBytes("hello world");
  uint32_t whole = Crc32c(BytesView(all.data(), all.size()));
  uint32_t part = Crc32c(BytesView(all.data(), 5));
  uint32_t chained = Crc32c(BytesView(all.data() + 5, all.size() - 5), part);
  EXPECT_EQ(whole, chained);
  EXPECT_EQ(UnmaskCrc(MaskCrc(whole)), whole);
}

TEST(KvRecordTest, RoundTripAndCorruptionDetection) {
  Bytes buffer;
  AppendPutRecord(buffer, "key1", ToBytes("value1"));
  AppendDeleteRecord(buffer, "key2");
  AppendCommitRecord(buffer, 42);

  size_t offset = 0;
  Record record;
  ASSERT_EQ(DecodeRecord(buffer, &offset, &record), DecodeStatus::kOk);
  EXPECT_EQ(record.type, RecordType::kPut);
  EXPECT_EQ(record.key, "key1");
  EXPECT_EQ(FromBytes(Bytes(record.value.begin(), record.value.end())), "value1");
  ASSERT_EQ(DecodeRecord(buffer, &offset, &record), DecodeStatus::kOk);
  EXPECT_EQ(record.type, RecordType::kDelete);
  EXPECT_EQ(record.key, "key2");
  ASSERT_EQ(DecodeRecord(buffer, &offset, &record), DecodeStatus::kOk);
  EXPECT_EQ(record.type, RecordType::kCommit);
  EXPECT_EQ(record.sequence, 42u);
  EXPECT_EQ(DecodeRecord(buffer, &offset, &record), DecodeStatus::kEndOfBuffer);

  // Flip one payload byte: the CRC must catch it.
  Bytes corrupt = buffer;
  corrupt[kRecordHeaderSize + 2] ^= 0x40;
  offset = 0;
  EXPECT_EQ(DecodeRecord(corrupt, &offset, &record), DecodeStatus::kCorrupt);

  // Cut the buffer mid-record: torn.
  offset = 0;
  EXPECT_EQ(DecodeRecord(BytesView(buffer.data(), kRecordHeaderSize + 3), &offset, &record),
            DecodeStatus::kTorn);
}

TEST_F(KvStoreTest, PutGetDeleteAcrossReopen) {
  {
    auto store = OpenStore();
    WriteBatch batch;
    batch.Put("alpha", ToBytes("1"));
    batch.Put("beta", ToBytes("2"));
    KvCommitResult result = store->Commit(batch);
    EXPECT_GT(result.bytes_appended, 0u);
    EXPECT_FALSE(result.fsynced);  // fsync disabled in OpenStore.

    WriteBatch batch2;
    batch2.Put("alpha", ToBytes("one"));
    batch2.Delete("beta");
    store->Commit(batch2);

    ASSERT_TRUE(store->Get("alpha").has_value());
    EXPECT_EQ(FromBytes(*store->Get("alpha")), "one");
    EXPECT_FALSE(store->Get("beta").has_value());
    EXPECT_FALSE(store->Get("gamma").has_value());
    EXPECT_EQ(store->key_count(), 1u);
  }
  auto reopened = OpenStore();
  ASSERT_TRUE(reopened->Get("alpha").has_value());
  EXPECT_EQ(FromBytes(*reopened->Get("alpha")), "one");
  EXPECT_FALSE(reopened->Get("beta").has_value());
  EXPECT_EQ(reopened->key_count(), 1u);
  EXPECT_EQ(reopened->stats().recovered_batches, 2u);
}

TEST_F(KvStoreTest, LaterOpInBatchWins) {
  auto store = OpenStore();
  WriteBatch batch;
  batch.Put("k", ToBytes("first"));
  batch.Put("k", ToBytes("second"));
  batch.Put("gone", ToBytes("x"));
  batch.Delete("gone");
  store->Commit(batch);
  EXPECT_EQ(FromBytes(*store->Get("k")), "second");
  EXPECT_FALSE(store->Get("gone").has_value());

  auto reopened = OpenStore();
  EXPECT_EQ(FromBytes(*reopened->Get("k")), "second");
  EXPECT_FALSE(reopened->Get("gone").has_value());
}

TEST_F(KvStoreTest, ScanPrefix) {
  auto store = OpenStore();
  WriteBatch batch;
  batch.Put("a/1", ToBytes("v1"));
  batch.Put("a/2", ToBytes("v2"));
  batch.Put("b/1", ToBytes("w1"));
  store->Commit(batch);
  std::unordered_map<std::string, std::string> seen;
  store->ScanPrefix("a/", [&](std::string_view key, BytesView value) {
    seen[std::string(key)] = std::string(value.begin(), value.end());
  });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["a/1"], "v1");
  EXPECT_EQ(seen["a/2"], "v2");
}

TEST_F(KvStoreTest, ReadCacheHitsAndCoherence) {
  KvOptions options;
  options.cache_bytes = 1 << 20;
  auto store = OpenStore(options);
  WriteBatch batch;
  batch.Put("k", ToBytes("v1"));
  store->Commit(batch);
  EXPECT_EQ(FromBytes(*store->Get("k")), "v1");  // Write-through: cache hit.
  uint64_t hits_before = store->stats().cache_hits;
  EXPECT_EQ(FromBytes(*store->Get("k")), "v1");
  EXPECT_GT(store->stats().cache_hits, hits_before);

  WriteBatch update;
  update.Put("k", ToBytes("v2"));
  store->Commit(update);
  EXPECT_EQ(FromBytes(*store->Get("k")), "v2");  // No stale cache read.

  WriteBatch del;
  del.Delete("k");
  store->Commit(del);
  EXPECT_FALSE(store->Get("k").has_value());
}

TEST_F(KvStoreTest, FsyncOncePerBatch) {
  KvOptions options;
  options.fsync = true;
  std::string error;
  auto store = KvStore::Open(dir_.string(), options, &error);
  ASSERT_NE(store, nullptr) << error;
  WriteBatch batch;
  for (int i = 0; i < 100; ++i) {
    batch.Put("key" + std::to_string(i), ToBytes("value"));
  }
  uint64_t fsyncs_before = store->stats().fsyncs;
  KvCommitResult result = store->Commit(batch);
  EXPECT_TRUE(result.fsynced);
  EXPECT_EQ(store->stats().fsyncs, fsyncs_before + 1);  // Group commit: one per batch.
}

TEST_F(KvStoreTest, SegmentRotation) {
  KvOptions options;
  options.segment_bytes = 2048;
  options.background_compaction = false;
  auto store = OpenStore(options);
  for (int i = 0; i < 64; ++i) {
    WriteBatch batch;
    batch.Put("key" + std::to_string(i), Bytes(100, static_cast<uint8_t>(i)));
    store->Commit(batch);
  }
  EXPECT_GT(store->stats().segments, 2u);
  store.reset();

  auto reopened = OpenStore(options);
  EXPECT_EQ(reopened->key_count(), 64u);
  for (int i = 0; i < 64; ++i) {
    auto value = reopened->Get("key" + std::to_string(i));
    ASSERT_TRUE(value.has_value()) << i;
    EXPECT_EQ(value->size(), 100u);
    EXPECT_EQ((*value)[0], static_cast<uint8_t>(i));
  }
}

// Returns the file the active (highest-id) segment lives in.
std::string LastSegment(KvStore& store) {
  std::vector<std::string> paths = store.SegmentPaths();
  EXPECT_FALSE(paths.empty());
  return paths.back();
}

TEST_F(KvRecoveryTest, TornTailRollsBackLastBatch) {
  std::string last;
  uintmax_t committed_size = 0;
  {
    auto store = OpenStore();
    WriteBatch keep;
    keep.Put("keep", ToBytes("durable"));
    store->Commit(keep);
    last = LastSegment(*store);
    committed_size = fs::file_size(last);
    WriteBatch lose;
    lose.Put("lose", ToBytes("torn away"));
    store->Commit(lose);
  }
  // Cut into the middle of the second batch's records: torn record.
  fs::resize_file(last, committed_size + 5);

  auto store = OpenStore();
  EXPECT_TRUE(store->Get("keep").has_value());
  EXPECT_FALSE(store->Get("lose").has_value());
  EXPECT_GT(store->stats().truncated_bytes, 0u);
  // The file was truncated back to the last commit marker.
  EXPECT_EQ(fs::file_size(last), committed_size);
}

TEST_F(KvRecoveryTest, MissingCommitMarkerRollsBackBatch) {
  std::string last;
  uintmax_t committed_size = 0;
  uintmax_t full_size = 0;
  {
    auto store = OpenStore();
    WriteBatch keep;
    keep.Put("keep", ToBytes("durable"));
    store->Commit(keep);
    last = LastSegment(*store);
    committed_size = fs::file_size(last);
    WriteBatch lose;
    lose.Put("lose1", ToBytes("a"));
    lose.Put("lose2", ToBytes("b"));
    store->Commit(lose);
    full_size = fs::file_size(last);
  }
  // Chop exactly the commit marker (17 framed bytes: 8 header + 9 payload):
  // the batch's records are intact but unsealed, so they must roll back.
  fs::resize_file(last, full_size - 17);

  auto store = OpenStore();
  EXPECT_TRUE(store->Get("keep").has_value());
  EXPECT_FALSE(store->Get("lose1").has_value());
  EXPECT_FALSE(store->Get("lose2").has_value());
  EXPECT_EQ(fs::file_size(last), committed_size);
}

TEST_F(KvRecoveryTest, CorruptRecordTruncates) {
  std::string last;
  uintmax_t committed_size = 0;
  {
    auto store = OpenStore();
    WriteBatch keep;
    keep.Put("keep", ToBytes("durable"));
    store->Commit(keep);
    last = LastSegment(*store);
    committed_size = fs::file_size(last);
    WriteBatch lose;
    lose.Put("lose", ToBytes("to be corrupted"));
    store->Commit(lose);
  }
  {
    // Flip a byte inside the second batch's payload.
    std::FILE* f = std::fopen(last.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(committed_size) + 12, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x1, f);
    std::fclose(f);
  }
  auto store = OpenStore();
  EXPECT_TRUE(store->Get("keep").has_value());
  EXPECT_FALSE(store->Get("lose").has_value());
  EXPECT_EQ(fs::file_size(last), committed_size);
}

TEST_F(KvRecoveryTest, RandomTruncationAlwaysRecoversPrefix) {
  // Property: truncating the tail segment at ANY byte yields some prefix of
  // the committed batches — never a partial batch, never out of order.
  KvOptions options;
  options.background_compaction = false;
  const int kBatches = 8;
  auto build = [&] {
    fs::remove_all(dir_);
    auto store = OpenStore(options);
    for (int b = 0; b < kBatches; ++b) {
      WriteBatch batch;
      batch.Put("count", ToBytes(std::to_string(b + 1)));
      batch.Put("key" + std::to_string(b), ToBytes("v"));
      store->Commit(batch);
    }
  };
  build();
  const std::string last = (fs::path(dir_) / "000001.seg").string();
  const uintmax_t full = fs::file_size(last);
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 24; ++trial) {
    build();
    uintmax_t cut = rng() % (full + 1);
    fs::resize_file(last, cut);
    auto store = OpenStore(options);
    auto count = store->Get("count");
    int prefix = count.has_value() ? std::stoi(FromBytes(*count)) : 0;
    EXPECT_LE(prefix, kBatches);
    for (int b = 0; b < kBatches; ++b) {
      EXPECT_EQ(store->Get("key" + std::to_string(b)).has_value(), b < prefix)
          << "cut=" << cut << " prefix=" << prefix << " b=" << b;
    }
    // Recovery truncated to a commit boundary; committing again must work and
    // survive a further reopen.
    WriteBatch batch;
    batch.Put("after", ToBytes("recovery"));
    store->Commit(batch);
    store.reset();
    auto reopened = OpenStore(options);
    EXPECT_TRUE(reopened->Get("after").has_value()) << "cut=" << cut;
  }
}

TEST_F(KvCompactionTest, ForcedCompactionPreservesContents) {
  KvOptions options;
  options.segment_bytes = 1024;
  options.background_compaction = false;
  auto store = OpenStore(options);
  // Overwrite a small key set many times: early segments become garbage.
  for (int round = 0; round < 40; ++round) {
    WriteBatch batch;
    for (int k = 0; k < 8; ++k) {
      batch.Put("key" + std::to_string(k),
                ToBytes("round" + std::to_string(round) + "k" + std::to_string(k)));
    }
    store->Commit(batch);
  }
  WriteBatch del;
  del.Delete("key7");
  store->Commit(del);

  size_t segments_before = store->stats().segments;
  ASSERT_GT(segments_before, 2u);
  int compacted = 0;
  while (store->CompactOldest(/*force=*/true)) {
    ++compacted;
    if (store->stats().segments <= 1) {
      break;
    }
  }
  EXPECT_GT(compacted, 0);
  EXPECT_GT(store->stats().compacted_bytes_reclaimed, 0u);
  EXPECT_LT(store->stats().segments, segments_before);

  for (int k = 0; k < 7; ++k) {
    auto value = store->Get("key" + std::to_string(k));
    ASSERT_TRUE(value.has_value()) << k;
    EXPECT_EQ(FromBytes(*value), "round39k" + std::to_string(k));
  }
  EXPECT_FALSE(store->Get("key7").has_value());
  store.reset();

  // Compacted image must replay identically.
  auto reopened = OpenStore(options);
  for (int k = 0; k < 7; ++k) {
    auto value = reopened->Get("key" + std::to_string(k));
    ASSERT_TRUE(value.has_value()) << k;
    EXPECT_EQ(FromBytes(*value), "round39k" + std::to_string(k));
  }
  EXPECT_FALSE(reopened->Get("key7").has_value());
}

TEST_F(KvCompactionTest, BackgroundCompactionReclaimsGarbage) {
  KvOptions options;
  options.segment_bytes = 1024;
  options.background_compaction = true;
  options.compaction_interval_ms = 1;
  options.compact_garbage_ratio = 0.3;
  auto store = OpenStore(options);
  for (int round = 0; round < 60; ++round) {
    WriteBatch batch;
    for (int k = 0; k < 8; ++k) {
      batch.Put("key" + std::to_string(k), Bytes(40, static_cast<uint8_t>(round)));
    }
    store->Commit(batch);
  }
  // The background thread should reclaim the fully dead early segments.
  for (int spin = 0; spin < 200 && store->stats().compactions == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(store->stats().compactions, 0u);
  for (int k = 0; k < 8; ++k) {
    auto value = store->Get("key" + std::to_string(k));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ((*value)[0], 59);
  }
}

TEST_F(KvConcurrencyTest, WritersReadersAndCompactionRace) {
  // TSan driver: one committer, several readers, background compaction with
  // aggressive thresholds, small segments. Readers must always observe a
  // committed value (monotonically non-decreasing rounds per key).
  KvOptions options;
  options.segment_bytes = 4096;
  options.background_compaction = true;
  options.compaction_interval_ms = 1;
  options.compact_garbage_ratio = 0.2;
  options.cache_bytes = 1 << 16;
  auto store = OpenStore(options);

  constexpr int kKeys = 16;
  constexpr int kRounds = 120;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&store, &done, &failures, r] {
      std::mt19937_64 rng(static_cast<uint64_t>(r) + 1);
      std::vector<int> last_seen(kKeys, -1);
      while (!done.load(std::memory_order_acquire)) {
        int k = static_cast<int>(rng() % kKeys);
        auto value = store->Get("key" + std::to_string(k));
        if (value.has_value()) {
          int round = static_cast<int>((*value)[0]);
          if (round < last_seen[static_cast<size_t>(k)]) {
            failures.fetch_add(1);  // Went back in time: torn isolation.
          }
          last_seen[static_cast<size_t>(k)] = round;
        }
      }
    });
  }

  for (int round = 0; round < kRounds; ++round) {
    WriteBatch batch;
    for (int k = 0; k < kKeys; ++k) {
      batch.Put("key" + std::to_string(k), Bytes(64, static_cast<uint8_t>(round)));
    }
    store->Commit(batch);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int k = 0; k < kKeys; ++k) {
    auto value = store->Get("key" + std::to_string(k));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ((*value)[0], kRounds - 1);
  }
  store.reset();
  auto reopened = OpenStore(options);
  for (int k = 0; k < kKeys; ++k) {
    auto value = reopened->Get("key" + std::to_string(k));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ((*value)[0], kRounds - 1);
  }
}

}  // namespace
}  // namespace pevm
