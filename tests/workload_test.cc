// Workload-generator tests: determinism, nonce sequencing, genesis
// invariants, transaction-mix plumbing, and the conflict-sweep block's
// structure.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "src/exec/apply.h"
#include "src/state/state_view.h"
#include "src/workload/assembler.h"
#include "src/workload/block_gen.h"
#include "src/workload/contracts.h"

namespace pevm {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.seed = 99;
  config.transactions_per_block = 60;
  config.users = 1200;
  config.tokens = 6;
  config.pools = 3;
  config.funds = 2;
  return config;
}

TEST(WorkloadTest, GenerationIsDeterministic) {
  WorkloadGenerator a(SmallConfig());
  WorkloadGenerator b(SmallConfig());
  Block block_a = a.MakeBlock();
  Block block_b = b.MakeBlock();
  ASSERT_EQ(block_a.transactions.size(), block_b.transactions.size());
  for (size_t i = 0; i < block_a.transactions.size(); ++i) {
    EXPECT_EQ(block_a.transactions[i].from, block_b.transactions[i].from);
    EXPECT_EQ(block_a.transactions[i].to, block_b.transactions[i].to);
    EXPECT_EQ(block_a.transactions[i].data, block_b.transactions[i].data);
    EXPECT_EQ(block_a.transactions[i].nonce, block_b.transactions[i].nonce);
  }
  EXPECT_EQ(a.MakeGenesis().Digest(), b.MakeGenesis().Digest());
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadConfig c1 = SmallConfig();
  WorkloadConfig c2 = SmallConfig();
  c2.seed = 100;
  Block b1 = WorkloadGenerator(c1).MakeBlock();
  Block b2 = WorkloadGenerator(c2).MakeBlock();
  bool any_diff = b1.transactions.size() != b2.transactions.size();
  for (size_t i = 0; !any_diff && i < b1.transactions.size(); ++i) {
    any_diff = !(b1.transactions[i].from == b2.transactions[i].from) ||
               b1.transactions[i].data != b2.transactions[i].data;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, NoncesSequencePerSenderAcrossBlocks) {
  WorkloadGenerator gen(SmallConfig());
  std::unordered_map<Address, uint64_t> expected;
  for (int b = 0; b < 4; ++b) {
    Block block = gen.MakeBlock();
    for (const Transaction& tx : block.transactions) {
      EXPECT_EQ(tx.nonce, expected[tx.from]) << tx.from.ToHex();
      ++expected[tx.from];
    }
  }
}

TEST(WorkloadTest, BlockNumbersAdvance) {
  WorkloadGenerator gen(SmallConfig());
  Block b1 = gen.MakeBlock();
  Block b2 = gen.MakeBlock();
  EXPECT_EQ(b2.context.number, b1.context.number + U256(1));
}

TEST(WorkloadTest, AllBlockTransactionsExecuteAgainstGenesisChain) {
  // Every generated transaction must be valid and non-reverting when the
  // blocks are replayed in order (except the intentional failing fraction).
  WorkloadConfig config = SmallConfig();
  config.failing_tx_frac = 0.0;
  WorkloadGenerator gen(config);
  WorldState state = gen.MakeGenesis();
  for (int b = 0; b < 2; ++b) {
    Block block = gen.MakeBlock();
    for (size_t i = 0; i < block.transactions.size(); ++i) {
      StateView view(state);
      Receipt r = ApplyTransaction(view, block.context, block.transactions[i]);
      ASSERT_TRUE(r.valid) << "block " << b << " tx " << i;
      EXPECT_EQ(r.status, EvmStatus::kSuccess)
          << "block " << b << " tx " << i << ": " << EvmStatusName(r.status);
      state.Apply(view.write_set());
    }
  }
}

TEST(WorkloadTest, FailingFractionProducesReverts) {
  WorkloadConfig config = SmallConfig();
  config.failing_tx_frac = 0.5;  // Half of the ERC-20 transfers overdraw.
  config.transactions_per_block = 200;
  WorkloadGenerator gen(config);
  WorldState state = gen.MakeGenesis();
  Block block = gen.MakeBlock();
  int reverts = 0;
  for (const Transaction& tx : block.transactions) {
    StateView view(state);
    Receipt r = ApplyTransaction(view, block.context, tx);
    if (r.valid && r.status == EvmStatus::kRevert) {
      ++reverts;
    }
    state.Apply(view.write_set());
  }
  EXPECT_GT(reverts, 10);
}

TEST(WorkloadTest, ConflictBlockStructure) {
  WorkloadConfig config = SmallConfig();
  WorkloadGenerator gen(config);
  Block block = gen.MakeErc20ConflictBlock(100, 0.4);
  ASSERT_EQ(block.transactions.size(), 100u);
  // Distinct senders throughout (no nonce interference).
  std::unordered_set<Address> senders;
  for (const Transaction& tx : block.transactions) {
    EXPECT_TRUE(senders.insert(tx.from).second);
    EXPECT_EQ(tx.to, gen.TokenAddress(0));
  }
  // The first 40 share owner user0; the rest use their own account.
  U256 owner0 = U256::FromAddress(gen.UserAddress(0));
  for (int i = 0; i < 100; ++i) {
    BytesView data = block.transactions[static_cast<size_t>(i)].data;
    U256 owner = U256::FromBigEndian(data.subspan(4, 32));
    if (i < 40) {
      EXPECT_EQ(owner, owner0) << i;
    } else {
      EXPECT_NE(owner, owner0) << i;
    }
  }
}

TEST(WorkloadTest, ConflictBlockExecutesCleanly) {
  WorkloadConfig config = SmallConfig();
  WorkloadGenerator gen(config);
  WorldState state = gen.MakeGenesis();
  Block block = gen.MakeErc20ConflictBlock(50, 1.0);
  for (size_t i = 0; i < block.transactions.size(); ++i) {
    StateView view(state);
    Receipt r = ApplyTransaction(view, block.context, block.transactions[i]);
    ASSERT_TRUE(r.valid) << i;
    ASSERT_EQ(r.status, EvmStatus::kSuccess) << i;
    state.Apply(view.write_set());
  }
}

TEST(WorkloadTest, GenesisFundsEveryUser) {
  WorkloadConfig config = SmallConfig();
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  for (int u = 0; u < config.users; u += 97) {
    EXPECT_FALSE(genesis.GetBalance(gen.UserAddress(u)).IsZero());
    EXPECT_FALSE(
        genesis.GetStorage(gen.TokenAddress(0), Erc20BalanceSlot(gen.UserAddress(u))).IsZero());
  }
  // Pools are wired to their tokens with reserves.
  for (int p = 0; p < config.pools; ++p) {
    EXPECT_NE(genesis.GetCode(gen.PoolAddress(p)), nullptr);
    EXPECT_FALSE(genesis.GetStorage(gen.PoolAddress(p), U256(kAmmReserve0Slot)).IsZero());
  }
  EXPECT_NE(genesis.GetCode(gen.FundAddress(0)), nullptr);
}

TEST(WorkloadTest, MixKnobsChangeComposition) {
  WorkloadConfig config = SmallConfig();
  config.transactions_per_block = 120;
  WorkloadGenerator gen(config);
  gen.SetMix(/*erc20=*/0.0, /*erc20_from=*/0.0, /*amm=*/0.0, /*crowdfund=*/0.0, /*failing=*/0.0);
  Block natives = gen.MakeBlock();
  for (const Transaction& tx : natives.transactions) {
    EXPECT_TRUE(tx.data.empty());  // Pure ether transfers.
  }
  gen.SetMix(1.0, 0.0, 0.0, 0.0, 0.0);
  Block transfers = gen.MakeBlock();
  uint32_t transfer_sel = Selector("transfer(address,uint256)");
  for (const Transaction& tx : transfers.transactions) {
    ASSERT_GE(tx.data.size(), 4u);
    uint32_t sel = (static_cast<uint32_t>(tx.data[0]) << 24) |
                   (static_cast<uint32_t>(tx.data[1]) << 16) |
                   (static_cast<uint32_t>(tx.data[2]) << 8) | tx.data[3];
    EXPECT_EQ(sel, transfer_sel);
  }
}

TEST(WorkloadTest, HotReceiversEmergeFromZipf) {
  WorkloadConfig config = SmallConfig();
  config.transactions_per_block = 400;
  WorkloadGenerator gen(config);
  gen.SetMix(0.0, 0.0, 0.0, 0.0, 0.0);  // Native transfers only.
  Block block = gen.MakeBlock();
  std::unordered_map<Address, int> receiver_counts;
  for (const Transaction& tx : block.transactions) {
    ++receiver_counts[tx.to];
  }
  int hottest = 0;
  for (const auto& [addr, count] : receiver_counts) {
    hottest = std::max(hottest, count);
  }
  // With s=1.2 over 1200 users, the hottest receiver takes a clear multiple
  // of the uniform share (400/1200 < 1).
  EXPECT_GE(hottest, 10);
}

}  // namespace
}  // namespace pevm
