// The paper's §6.2 correctness validation, adapted: every executor must
// produce a post-state whose Merkle Patricia root matches the serial
// executor's, block after block, on mainnet-like hot-spot workloads.
#include <gtest/gtest.h>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/baselines/two_phase_locking.h"
#include "src/core/parallel_evm.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceTest, ExecutorsAgreeOnMainnetLikeBlocks) {
  WorkloadConfig config;
  config.seed = GetParam();
  config.transactions_per_block = 120;
  config.users = 600;
  config.tokens = 12;
  config.pools = 4;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();

  ExecOptions options;
  options.threads = 8;
  SerialExecutor serial(options);
  OccExecutor occ(options);
  ParallelEvmExecutor pevm(options);
  BlockStmExecutor block_stm(options);
  TwoPhaseLockingExecutor two_pl(options);

  WorldState s_serial = genesis;
  WorldState s_occ = genesis;
  WorldState s_pevm = genesis;
  WorldState s_stm = genesis;
  WorldState s_2pl = genesis;

  for (int b = 0; b < 3; ++b) {
    Block block = gen.MakeBlock();
    BlockReport r_serial = serial.Execute(block, s_serial);
    BlockReport r_occ = occ.Execute(block, s_occ);
    BlockReport r_pevm = pevm.Execute(block, s_pevm);
    BlockReport r_stm = block_stm.Execute(block, s_stm);
    BlockReport r_2pl = two_pl.Execute(block, s_2pl);

    ASSERT_EQ(s_serial.Digest(), s_occ.Digest()) << "occ diverged at block " << b;
    ASSERT_EQ(s_serial.Digest(), s_pevm.Digest()) << "parallelevm diverged at block " << b;
    ASSERT_EQ(s_serial.Digest(), s_stm.Digest()) << "block-stm diverged at block " << b;
    ASSERT_EQ(s_serial.Digest(), s_2pl.Digest()) << "2pl diverged at block " << b;
    ASSERT_EQ(r_stm.receipts.size(), r_serial.receipts.size());
    for (size_t i = 0; i < r_serial.receipts.size(); ++i) {
      EXPECT_EQ(r_stm.receipts[i].gas_used, r_serial.receipts[i].gas_used) << "stm tx " << i;
      EXPECT_EQ(r_2pl.receipts[i].gas_used, r_serial.receipts[i].gas_used) << "2pl tx " << i;
    }
    EXPECT_LT(r_stm.makespan_ns, r_serial.makespan_ns);
    EXPECT_LE(r_2pl.makespan_ns, r_serial.makespan_ns * 2);  // 2PL may barely win.

    // Receipts must agree transaction by transaction (validity, status, gas).
    ASSERT_EQ(r_serial.receipts.size(), r_pevm.receipts.size());
    for (size_t i = 0; i < r_serial.receipts.size(); ++i) {
      EXPECT_EQ(r_serial.receipts[i].valid, r_pevm.receipts[i].valid) << "tx " << i;
      EXPECT_EQ(r_serial.receipts[i].status, r_pevm.receipts[i].status) << "tx " << i;
      EXPECT_EQ(r_serial.receipts[i].gas_used, r_pevm.receipts[i].gas_used) << "tx " << i;
      EXPECT_EQ(r_occ.receipts[i].gas_used, r_pevm.receipts[i].gas_used) << "tx " << i;
    }

    // Parallel algorithms must actually beat serial in virtual time.
    EXPECT_LT(r_occ.makespan_ns, r_serial.makespan_ns);
    EXPECT_LT(r_pevm.makespan_ns, r_serial.makespan_ns);
  }

  // Full MPT state roots at the end (expensive; done once).
  EXPECT_EQ(HexEncode(s_serial.StateRoot()), HexEncode(s_occ.StateRoot()));
  EXPECT_EQ(HexEncode(s_serial.StateRoot()), HexEncode(s_pevm.StateRoot()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest, ::testing::Values(1, 7, 13, 29));

TEST(EquivalenceContention, ConflictSweepAgreesAndRedoEngages) {
  WorkloadConfig config;
  config.seed = 5;
  config.users = 1400;
  config.tokens = 2;
  config.pools = 1;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();

  ExecOptions options;
  options.threads = 8;
  for (double ratio : {0.0, 0.3, 1.0}) {
    WorkloadGenerator g2(config);  // Fresh nonces per ratio.
    Block block = g2.MakeErc20ConflictBlock(300, ratio);
    WorldState s_serial = genesis;
    WorldState s_pevm = genesis;
    SerialExecutor serial(options);
    ParallelEvmExecutor pevm(options);
    BlockReport rs = serial.Execute(block, s_serial);
    BlockReport rp = pevm.Execute(block, s_pevm);
    ASSERT_EQ(s_serial.Digest(), s_pevm.Digest()) << "ratio " << ratio;
    if (ratio == 0.0) {
      EXPECT_EQ(rp.conflicts, 0) << "conflict-free block must not conflict";
    } else {
      EXPECT_GT(rp.conflicts, 0);
      // The vast majority of conflicts must be repaired by redo, not by full
      // re-execution (the paper reports 87% redo success on mainnet; this
      // workload is the paper's own clean ERC-20 scenario).
      EXPECT_GT(rp.redo_success, rp.conflicts / 2);
    }
    (void)rs;
  }
}

}  // namespace
}  // namespace pevm
