// The telemetry layer's two contracts (DESIGN.md §4.3):
//
//  1. Mechanics — ring buffers wrap instead of blocking, concurrent writers
//     from real pool threads never tear the export, the Chrome trace and the
//     metrics snapshot are valid JSON, and the histogram bucket math is exact
//     at the power-of-two boundaries.
//
//  2. Inertness — flipping the recorder on must be invisible in results:
//     state roots, digests, and every deterministic BlockReport field are
//     bit-identical with telemetry on or off, for every executor at every
//     OS-thread count. The recorder observes the wall clock only; this suite
//     is the executable form of that argument.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/baselines/two_phase_locking.h"
#include "src/core/parallel_evm.h"
#include "src/exec/thread_pool.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

// --- Minimal JSON validator (no external deps): accepts exactly one value. --

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::string_view(lit).size();
    if (s_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    if (depth_ > 64) {
      return false;
    }
    SkipWs();
    if (pos_ >= s_.size()) {
      return false;
    }
    char c = s_[pos_];
    if (c == '{' || c == '[') {
      char close = c == '{' ? '}' : ']';
      ++pos_;
      ++depth_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == close) {
        ++pos_;
        --depth_;
        return true;
      }
      for (;;) {
        if (close == '}') {
          SkipWs();
          if (!String()) {
            return false;
          }
          SkipWs();
          if (pos_ >= s_.size() || s_[pos_++] != ':') {
            return false;
          }
        }
        if (!Value()) {
          return false;
        }
        SkipWs();
        if (pos_ >= s_.size()) {
          return false;
        }
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == close) {
          ++pos_;
          --depth_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    return Number();
  }

  const std::string& s_;
  size_t pos_ = 0;
  int depth_ = 0;
};

bool IsValidJson(const std::string& s) { return JsonValidator(s).Valid(); }

TEST(JsonValidatorSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson(R"({"a": [1, 2.5, -3e4], "b": {"c": "x\"y"}, "d": true})"));
  EXPECT_TRUE(IsValidJson("[]"));
  EXPECT_FALSE(IsValidJson(R"({"a": )"));
  EXPECT_FALSE(IsValidJson(R"({"a": 1} extra)"));
  EXPECT_FALSE(IsValidJson(R"({"buc{"lo": 1}]})"));  // The truncation shape.
}

// --- Trace recorder mechanics. --------------------------------------------

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::SetEnabled(true);
    telemetry::Reset();
  }
  void TearDown() override {
    telemetry::SetEnabled(false);
    telemetry::Reset();
    telemetry::SetRingCapacity(1 << 15);  // Restore the default for later tests.
  }
};

TEST_F(TelemetryTest, RingWrapsAndCountsDroppedEvents) {
  size_t applied = telemetry::SetRingCapacity(10);  // Rounds up to 16.
  EXPECT_EQ(applied, 16u);
  // A fresh thread registers a fresh (small) ring; the emitting thread is the
  // buffer's only writer, per the design.
  std::thread t([] {
    for (int i = 0; i < 100; ++i) {
      telemetry::EmitInstant("wrap.event", "i", static_cast<uint64_t>(i));
    }
  });
  t.join();
  EXPECT_EQ(telemetry::DroppedEvents(), 100u - 16u);
  std::string json = telemetry::ChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  // Only the newest `capacity` events survive; the oldest surviving one is #84.
  EXPECT_EQ(json.find("\"i\": 83"), std::string::npos);
  EXPECT_NE(json.find("\"i\": 84"), std::string::npos);
  EXPECT_NE(json.find("\"i\": 99"), std::string::npos);
}

TEST_F(TelemetryTest, ConcurrentPoolWritersProduceValidJson) {
  {
    ThreadPool pool(8);
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(256, [](size_t i) {
        telemetry::Span span("pool.work");
        telemetry::EmitInstant("pool.tick", "i", i);
      });
    }
  }
  // 7 workers + the caller all emitted; every buffer must export cleanly.
  EXPECT_GE(telemetry::RegisteredThreads(), 8u);
  std::string json = telemetry::ChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json));
  EXPECT_NE(json.find("\"pool.work\""), std::string::npos);
#if !defined(PEVM_TELEMETRY_DISABLED)
  // Worker threads name themselves through the (compilable-out) macro.
  EXPECT_NE(json.find("\"pool-worker\""), std::string::npos);
#endif
}

TEST_F(TelemetryTest, ExportWhileWritingStaysValidJson) {
  // The exporter reads rings concurrently with a live writer: a torn slot may
  // garble one entry's *values* but must never break the JSON structure.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      telemetry::EmitSpan("race.span", telemetry::NowNs(), telemetry::NowNs(), "i", i++);
    }
  });
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(IsValidJson(telemetry::ChromeTraceJson()));
  }
  stop.store(true);
  writer.join();
}

TEST_F(TelemetryTest, DisabledRecorderBuffersNothing) {
  telemetry::SetEnabled(false);
  telemetry::Reset();
  {
    PEVM_TRACE_SPAN("off.span");
    PEVM_TRACE_INSTANT("off.instant");
    PEVM_TRACE_COUNTER("off.counter", 7);
  }
  std::string json = telemetry::ChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json));
  EXPECT_EQ(json.find("off.span"), std::string::npos);
  EXPECT_EQ(json.find("off.instant"), std::string::npos);
  EXPECT_EQ(telemetry::DroppedEvents(), 0u);
}

TEST_F(TelemetryTest, ThreadNamesAppearInExport) {
  std::thread t([] {
    telemetry::SetThreadName("my-named-thread");
    telemetry::EmitInstant("named.event");
  });
  t.join();
  std::string json = telemetry::ChromeTraceJson();
  EXPECT_NE(json.find("\"my-named-thread\""), std::string::npos);
}

// --- Metrics registry. ----------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundariesAreExact) {
  // Bucket i holds values of bit width i: 0→{0}, 1→{1}, 2→{2,3}, 3→{4..7}...
  EXPECT_EQ(telemetry::Histogram::BucketLo(0), 0u);
  EXPECT_EQ(telemetry::Histogram::BucketHi(0), 0u);
  EXPECT_EQ(telemetry::Histogram::BucketLo(1), 1u);
  EXPECT_EQ(telemetry::Histogram::BucketHi(1), 1u);
  EXPECT_EQ(telemetry::Histogram::BucketLo(4), 8u);
  EXPECT_EQ(telemetry::Histogram::BucketHi(4), 15u);
  EXPECT_EQ(telemetry::Histogram::BucketLo(64), uint64_t{1} << 63);
  EXPECT_EQ(telemetry::Histogram::BucketHi(64), UINT64_MAX);

  telemetry::Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(8);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 14u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 0u);
  EXPECT_EQ(h.bucket_count(4), 1u);
}

TEST(MetricsTest, QuantilesInterpolateWithinTheSelectedBucket) {
  telemetry::Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // Empty.
  for (int i = 0; i < 100; ++i) {
    h.Observe(1000);  // Bucket 10: [512, 1023].
  }
  double p50 = h.Quantile(0.50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1023.0);
  EXPECT_GE(h.Quantile(0.99), p50);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(MetricsTest, RegistryReturnsStableReferencesAndValidJson) {
  auto& c = telemetry::GetCounter("test.counter");
  EXPECT_EQ(&c, &telemetry::GetCounter("test.counter"));
  c.Add(41);
  c.Add();
  EXPECT_EQ(c.value(), 42u);
  telemetry::GetGauge("test.gauge").Set(-7);
  telemetry::GetHistogram("test.hist").Observe(1'000'000);

  std::string json = telemetry::MetricsJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"test.counter\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\": -7"), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);

  telemetry::ClearMetrics();
  EXPECT_EQ(telemetry::GetCounter("test.counter").value(), 0u);
  EXPECT_EQ(telemetry::GetGauge("test.gauge").value(), 0);
  EXPECT_EQ(telemetry::GetHistogram("test.hist").count(), 0u);
}

// --- Inertness: telemetry on/off is invisible in results. ------------------

struct InertnessResult {
  std::string root;
  uint64_t digest = 0;
  std::vector<BlockReport> reports;
};

// Everything except wall-clock fields; mirrors determinism_test's contract.
void ExpectSameDeterministicFields(const InertnessResult& off, const InertnessResult& on,
                                   const char* executor, int os_threads) {
  SCOPED_TRACE(testing::Message() << executor << " os_threads=" << os_threads);
  EXPECT_EQ(off.root, on.root);
  EXPECT_EQ(off.digest, on.digest);
  ASSERT_EQ(off.reports.size(), on.reports.size());
  for (size_t b = 0; b < off.reports.size(); ++b) {
    const BlockReport& x = off.reports[b];
    const BlockReport& y = on.reports[b];
    EXPECT_EQ(x.makespan_ns, y.makespan_ns);
    EXPECT_EQ(x.conflicts, y.conflicts);
    EXPECT_EQ(x.redo_success, y.redo_success);
    EXPECT_EQ(x.redo_fail, y.redo_fail);
    EXPECT_EQ(x.full_reexecutions, y.full_reexecutions);
    EXPECT_EQ(x.lock_aborts, y.lock_aborts);
    EXPECT_EQ(x.redo_entries_reexecuted, y.redo_entries_reexecuted);
    EXPECT_EQ(x.redo_ns, y.redo_ns);
    EXPECT_EQ(x.oplog_entries, y.oplog_entries);
    EXPECT_EQ(x.instructions, y.instructions);
    EXPECT_EQ(x.prefetch_hits, y.prefetch_hits);
    EXPECT_EQ(x.prefetch_misses, y.prefetch_misses);
    EXPECT_EQ(x.prefetch_wasted, y.prefetch_wasted);
    EXPECT_EQ(x.conflict_keys, y.conflict_keys);
    EXPECT_EQ(x.receipts, y.receipts);
  }
}

class InertnessTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    WorkloadConfig config;
    config.seed = 777;
    config.transactions_per_block = 100;
    config.users = 500;
    config.tokens = 5;
    config.pools = 3;
    WorkloadGenerator gen(config);
    genesis_ = gen.MakeGenesis();
    for (int b = 0; b < 2; ++b) {
      blocks_.push_back(gen.MakeBlock());
    }
  }
  void TearDown() override {
    telemetry::SetEnabled(false);
    telemetry::Reset();
  }

  template <typename MakeExec>
  InertnessResult Run(MakeExec make, bool telemetry_on) {
    telemetry::SetEnabled(telemetry_on);
    telemetry::Reset();
    ExecOptions options;
    options.threads = 8;
    options.os_threads = GetParam();
    auto executor = make(options);
    WorldState state = genesis_;
    InertnessResult result;
    for (const Block& block : blocks_) {
      result.reports.push_back(executor->Execute(block, state));
    }
    result.root = HexEncode(state.StateRoot());
    result.digest = state.Digest();
    return result;
  }

  template <typename MakeExec>
  void ExpectInert(MakeExec make, const char* name) {
    InertnessResult off = Run(make, /*telemetry_on=*/false);
    InertnessResult on = Run(make, /*telemetry_on=*/true);
    ExpectSameDeterministicFields(off, on, name, GetParam());
  }

  WorldState genesis_;
  std::vector<Block> blocks_;
};

TEST_P(InertnessTest, AllExecutorsProduceIdenticalResultsWithTracingOnOrOff) {
  ExpectInert([](const ExecOptions& o) { return std::make_unique<SerialExecutor>(o); },
              "serial");
  ExpectInert(
      [](const ExecOptions& o) { return std::make_unique<TwoPhaseLockingExecutor>(o); },
      "2pl");
  ExpectInert([](const ExecOptions& o) { return std::make_unique<OccExecutor>(o); }, "occ");
  ExpectInert([](const ExecOptions& o) { return std::make_unique<BlockStmExecutor>(o); },
              "block-stm");
  ExpectInert([](const ExecOptions& o) { return std::make_unique<ParallelEvmExecutor>(o); },
              "parallelevm");
}

TEST_P(InertnessTest, PrefetchPipelineIsInertUnderTracing) {
  // The racy background engine plus simulated storage latency is the
  // instrumentation-densest path (sim.cold_read fires per miss).
  ExpectInert(
      [](const ExecOptions& o) {
        ExecOptions with_prefetch = o;
        with_prefetch.prefetch_depth = 8;
        with_prefetch.storage.cold_read_ns = 1'000;
        with_prefetch.storage.warm_read_ns = 100;
        return std::make_unique<ParallelEvmExecutor>(with_prefetch);
      },
      "parallelevm+prefetch");
}

TEST_P(InertnessTest, TracingActuallyRecordedDuringTheOnRuns) {
  // Guard against vacuity: the inertness comparison means nothing if the "on"
  // run never wrote an event.
#if defined(PEVM_TELEMETRY_DISABLED)
  GTEST_SKIP() << "instrumentation sites compiled out (-DPEVM_TELEMETRY=OFF)";
#endif
  telemetry::SetEnabled(true);
  telemetry::Reset();
  ExecOptions options;
  options.threads = 8;
  options.os_threads = GetParam();
  ParallelEvmExecutor executor(options);
  WorldState state = genesis_;
  executor.Execute(blocks_.front(), state);
  std::string json = telemetry::ChromeTraceJson();
  EXPECT_NE(json.find("\"exec.read_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"exec.commit_loop\""), std::string::npos);
  EXPECT_TRUE(IsValidJson(json));
}

INSTANTIATE_TEST_SUITE_P(OsThreads, InertnessTest, ::testing::Values(1, 4, 16),
                         [](const auto& info) {
                           return "os_threads_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pevm
